//! Functional PIM crossbar simulator.
//!
//! The analytical model (`pim-cost`) predicts *how many* cycles a mapping
//! needs; this crate proves the mapping is *correct* by executing it:
//!
//! 1. each (AR, AC) tile of a [`pim_mapping::MappingPlan`] is programmed
//!    into a [`Crossbar`];
//! 2. every parallel-window position streams its input elements into the
//!    rows (one analog MVM per computing cycle);
//! 3. per-column results are scattered into the output feature map, with
//!    digital accumulation of partial sums across AR tiles;
//! 4. the result is compared against the reference convolution from
//!    `pim-tensor` — bit-exact in integer mode.
//!
//! Along the way the engine counts cycles, MAC operations and ADC/DAC
//! conversions, and integrates the `pim-arch` energy model, which is how
//! the energy experiment (docs/EXPERIMENTS.md, A5) is produced. A
//! [`quant::QuantSpec`] models finite weight/input/ADC precision for the
//! device-realism extension.
//!
//! Beyond single layers, the [`network`] module executes *whole
//! networks*: [`NetworkExecutor`] programs every stage of a deployed
//! network once ([`ProgrammedStage`]) and streams input feature maps
//! through the programmed state (convolution on the crossbars,
//! ReLU/pooling in the digital periphery) — one input via `execute`, a
//! whole batch via `execute_batch`, bit-identically. [`simulate_network`]
//! and [`simulate_network_batch`] prove every result bit-exact against
//! the `pim-tensor` reference forward pass while cross-checking
//! executed against predicted cycles.
//!
//! # Example
//!
//! ```
//! use pim_mapping::MappingAlgorithm;
//! use pim_nets::ConvLayer;
//! use pim_arch::PimArray;
//! use pim_sim::Engine;
//! use pim_tensor::gen;
//!
//! let layer = ConvLayer::square("c", 8, 3, 2, 3)?;
//! let array = PimArray::new(64, 64)?;
//! let plan = MappingAlgorithm::VwSdk.plan(&layer, array)?;
//! let ifm = gen::random3::<i64>(2, 8, 8, 1);
//! let weights = gen::random4::<i64>(3, 2, 3, 3, 2);
//! let run = Engine::new().run(&plan, &ifm, &weights)?;
//! let reference = pim_tensor::conv2d_direct(&ifm, &weights, layer_params(&layer))?;
//! assert_eq!(run.ofm(), &reference);
//! # use pim_sim::layer_params;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod crossbar;
mod engine;
pub mod metrics;
pub mod network;
pub mod programmed;
pub mod quant;
pub mod verify;

pub use crossbar::Crossbar;
pub use engine::{layer_params, Engine, SimRun};
pub use metrics::RunStats;
pub use network::{
    simulate_deployment, simulate_deployment_batch, simulate_network, simulate_network_batch,
    BatchRun, NetworkExecutor, NetworkRun, SimulationReport, StageExecution,
};
pub use pim_tensor::ExecMode;
pub use programmed::ProgrammedStage;

use std::error::Error;
use std::fmt;

/// Error raised when simulation inputs are inconsistent with the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    message: String,
}

impl SimError {
    /// Creates a simulation error.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation: {}", self.message)
    }
}

impl Error for SimError {}

impl From<pim_mapping::MappingError> for SimError {
    fn from(err: pim_mapping::MappingError) -> Self {
        SimError::new(err.to_string())
    }
}

impl From<pim_tensor::ShapeError> for SimError {
    fn from(err: pim_tensor::ShapeError) -> Self {
        SimError::new(err.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
