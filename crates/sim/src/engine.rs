//! The execution engine: runs a mapping plan on real tensors.

use crate::metrics::RunStats;
use crate::programmed::ProgrammedStage;
use crate::Result;
use pim_arch::energy::EnergyModel;
use pim_mapping::MappingPlan;
use pim_nets::ConvLayer;
use pim_tensor::{Conv2dParams, Scalar, Tensor3, Tensor4};

/// Converts a layer's hyper-parameters into the reference-convolution
/// parameter block (used to cross-check engine output).
pub fn layer_params(layer: &ConvLayer) -> Conv2dParams {
    Conv2dParams {
        stride_h: layer.stride(),
        stride_w: layer.stride(),
        pad_h: layer.padding(),
        pad_w: layer.padding(),
        dilation_h: layer.dilation(),
        dilation_w: layer.dilation(),
    }
}

/// The result of simulating one layer: the output feature map plus
/// execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRun<T> {
    ofm: Tensor3<T>,
    stats: RunStats,
}

impl<T> SimRun<T> {
    /// The computed output feature map (`OC × OH × OW`).
    pub fn ofm(&self) -> &Tensor3<T> {
        &self.ofm
    }

    /// Execution counters.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Consumes the run, returning the output feature map.
    pub fn into_ofm(self) -> Tensor3<T> {
        self.ofm
    }
}

/// The crossbar execution engine.
///
/// Stateless between runs apart from its [`EnergyModel`]; see the crate
/// docs for a full example.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Engine {
    energy: EnergyModel,
}

impl Engine {
    /// Engine with the default (ISAAC-like) energy model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit energy model.
    pub fn with_energy_model(energy: EnergyModel) -> Self {
        Self { energy }
    }

    /// The engine's energy model (used when replaying analytical
    /// counters for a pre-programmed stage).
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Executes `plan` on the given input feature map and weight bank.
    ///
    /// The number of analog MVMs performed equals the plan's predicted
    /// [`MappingPlan::cycles`] (asserted by the test suite), and the
    /// output equals the reference convolution — exactly, for integer
    /// scalars.
    ///
    /// Implemented as program-then-stream over a
    /// [`ProgrammedStage`]: callers executing many inputs against the
    /// same plan should program once themselves and stream a batch —
    /// this convenience entry point pays the programming cost per call.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`](crate::SimError) if tensor dimensions
    /// disagree with the layer, or the plan's layer has no cell-level
    /// layout.
    pub fn run<T: Scalar>(
        &self,
        plan: &MappingPlan,
        ifm: &Tensor3<T>,
        weights: &Tensor4<T>,
    ) -> Result<SimRun<T>> {
        let mut stats = RunStats::new();
        let stage = ProgrammedStage::program(plan, weights, &mut stats)?;
        stage.stream_stats(&self.energy, &mut stats);
        let mut ofms = stage.stream_batch(std::slice::from_ref(ifm))?;
        let ofm = ofms.pop().expect("one output per streamed input");
        Ok(SimRun { ofm, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::PimArray;
    use pim_mapping::MappingAlgorithm;
    use pim_tensor::{conv2d_direct, gen};

    fn arr(r: usize, c: usize) -> PimArray {
        PimArray::new(r, c).unwrap()
    }

    fn check_layer(plan: &MappingPlan, seed: u64) {
        let layer = plan.layer();
        let ifm = gen::random3::<i64>(layer.in_channels(), layer.input_h(), layer.input_w(), seed);
        let weights = gen::random4::<i64>(
            layer.out_channels(),
            layer.in_channels(),
            layer.kernel_h(),
            layer.kernel_w(),
            seed ^ 0x5a5a,
        );
        let run = Engine::new().run(plan, &ifm, &weights).unwrap();
        let reference = conv2d_direct(&ifm, &weights, layer_params(layer)).unwrap();
        assert_eq!(run.ofm(), &reference, "{} mismatch", plan.algorithm());
        assert_eq!(
            run.stats().computing_cycles,
            plan.cycles(),
            "{} cycle count mismatch",
            plan.algorithm()
        );
    }

    #[test]
    fn im2col_execution_matches_reference() {
        let l = ConvLayer::square("c", 8, 3, 3, 5).unwrap();
        let plan = MappingAlgorithm::Im2col.plan(&l, arr(32, 16)).unwrap();
        check_layer(&plan, 11);
    }

    #[test]
    fn im2col_with_row_tiling_matches_reference() {
        // Kernel rows 27 on a 16-row array: AR = 2, dense straddling.
        let l = ConvLayer::square("c", 6, 3, 3, 4).unwrap();
        let plan = MappingAlgorithm::Im2col.plan(&l, arr(16, 8)).unwrap();
        assert!(plan.ar_cycles() > 1);
        check_layer(&plan, 12);
    }

    #[test]
    fn vw_execution_matches_reference() {
        let l = ConvLayer::square("c", 10, 3, 4, 6).unwrap();
        let plan = MappingAlgorithm::VwSdk.plan(&l, arr(64, 48)).unwrap();
        assert!(plan.windows_in_pw() > 1, "expected a real parallel window");
        check_layer(&plan, 13);
    }

    #[test]
    fn vw_with_channel_tiling_matches_reference() {
        // Force AR > 1: 8 channels, ICt limited by a small array.
        let l = ConvLayer::square("c", 9, 3, 8, 6).unwrap();
        let plan = MappingAlgorithm::VwSdk.plan(&l, arr(48, 32)).unwrap();
        check_layer(&plan, 14);
    }

    #[test]
    fn sdk_execution_matches_reference() {
        let l = ConvLayer::square("c", 12, 3, 4, 8).unwrap();
        let plan = MappingAlgorithm::Sdk.plan(&l, arr(64, 64)).unwrap();
        check_layer(&plan, 15);
    }

    #[test]
    fn smd_execution_matches_reference() {
        let l = ConvLayer::square("c", 8, 3, 2, 3).unwrap();
        let plan = MappingAlgorithm::Smd.plan(&l, arr(64, 64)).unwrap();
        assert!(plan.duplication() > 1);
        check_layer(&plan, 16);
    }

    #[test]
    fn strided_padded_layer_matches_reference() {
        let l = ConvLayer::builder("sp")
            .input(9, 9)
            .kernel(3, 3)
            .channels(2, 4)
            .stride(2)
            .padding(1)
            .build()
            .unwrap();
        for alg in [MappingAlgorithm::Im2col, MappingAlgorithm::VwSdk] {
            let plan = alg.plan(&l, arr(48, 32)).unwrap();
            check_layer(&plan, 17);
        }
    }

    #[test]
    fn engine_rejects_mismatched_tensors() {
        let l = ConvLayer::square("c", 8, 3, 2, 3).unwrap();
        let plan = MappingAlgorithm::Im2col.plan(&l, arr(32, 32)).unwrap();
        let bad_ifm = gen::random3::<i64>(3, 8, 8, 1);
        let weights = gen::random4::<i64>(3, 2, 3, 3, 2);
        assert!(Engine::new().run(&plan, &bad_ifm, &weights).is_err());
        let ifm = gen::random3::<i64>(2, 8, 8, 1);
        let bad_w = gen::random4::<i64>(3, 2, 5, 5, 2);
        assert!(Engine::new().run(&plan, &ifm, &bad_w).is_err());
    }

    #[test]
    fn stats_count_programmings_and_conversions() {
        let l = ConvLayer::square("c", 6, 3, 3, 4).unwrap();
        let plan = MappingAlgorithm::Im2col.plan(&l, arr(16, 8)).unwrap();
        let ifm = gen::random3::<i64>(3, 6, 6, 3);
        let weights = gen::random4::<i64>(4, 3, 3, 3, 4);
        let run = Engine::new().run(&plan, &ifm, &weights).unwrap();
        let s = run.stats();
        assert_eq!(s.array_programmings, plan.ar_cycles() * plan.ac_cycles());
        assert!(s.adc_conversions > 0);
        assert!(s.dac_conversions > 0);
        assert!(s.energy_pj() > 0.0);
    }

    #[test]
    fn float_execution_is_close_to_reference() {
        let l = ConvLayer::square("c", 8, 3, 2, 3).unwrap();
        let plan = MappingAlgorithm::VwSdk.plan(&l, arr(64, 64)).unwrap();
        let ifm = gen::random3::<f64>(2, 8, 8, 5);
        let weights = gen::random4::<f64>(3, 2, 3, 3, 6);
        let run = Engine::new().run(&plan, &ifm, &weights).unwrap();
        let reference = conv2d_direct(&ifm, &weights, layer_params(&l)).unwrap();
        for (a, b) in run.ofm().as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
