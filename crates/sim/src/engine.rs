//! The execution engine: runs a mapping plan on real tensors.

use crate::crossbar::Crossbar;
use crate::metrics::RunStats;
use crate::{Result, SimError};
use pim_arch::energy::EnergyModel;
use pim_mapping::layout::{SmdLayout, TileLayout};
use pim_mapping::schedule::pw_positions;
use pim_mapping::{MappingAlgorithm, MappingPlan};
use pim_nets::ConvLayer;
use pim_tensor::{Conv2dParams, Scalar, Tensor3, Tensor4};

/// Converts a layer's hyper-parameters into the reference-convolution
/// parameter block (used to cross-check engine output).
pub fn layer_params(layer: &ConvLayer) -> Conv2dParams {
    Conv2dParams {
        stride_h: layer.stride(),
        stride_w: layer.stride(),
        pad_h: layer.padding(),
        pad_w: layer.padding(),
        dilation_h: layer.dilation(),
        dilation_w: layer.dilation(),
    }
}

/// The result of simulating one layer: the output feature map plus
/// execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRun<T> {
    ofm: Tensor3<T>,
    stats: RunStats,
}

impl<T> SimRun<T> {
    /// The computed output feature map (`OC × OH × OW`).
    pub fn ofm(&self) -> &Tensor3<T> {
        &self.ofm
    }

    /// Execution counters.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Consumes the run, returning the output feature map.
    pub fn into_ofm(self) -> Tensor3<T> {
        self.ofm
    }
}

/// The crossbar execution engine.
///
/// Stateless between runs apart from its [`EnergyModel`]; see the crate
/// docs for a full example.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Engine {
    energy: EnergyModel,
}

impl Engine {
    /// Engine with the default (ISAAC-like) energy model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit energy model.
    pub fn with_energy_model(energy: EnergyModel) -> Self {
        Self { energy }
    }

    /// Executes `plan` on the given input feature map and weight bank.
    ///
    /// The number of analog MVMs performed equals the plan's predicted
    /// [`MappingPlan::cycles`] (asserted by the test suite), and the
    /// output equals the reference convolution — exactly, for integer
    /// scalars.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if tensor dimensions disagree with the
    /// layer, or the plan's layer is grouped (no cell-level layout).
    pub fn run<T: Scalar>(
        &self,
        plan: &MappingPlan,
        ifm: &Tensor3<T>,
        weights: &Tensor4<T>,
    ) -> Result<SimRun<T>> {
        let layer = plan.layer();
        if ifm.dims() != (layer.in_channels(), layer.input_h(), layer.input_w()) {
            return Err(SimError::new(format!(
                "input {:?} does not match layer {:?}",
                ifm.dims(),
                (layer.in_channels(), layer.input_h(), layer.input_w())
            )));
        }
        if weights.dims()
            != (
                layer.out_channels(),
                layer.in_channels_per_group(),
                layer.kernel_h(),
                layer.kernel_w(),
            )
        {
            return Err(SimError::new(format!(
                "weights {:?} do not match layer kernel {:?}",
                weights.dims(),
                (
                    layer.out_channels(),
                    layer.in_channels_per_group(),
                    layer.kernel_h(),
                    layer.kernel_w()
                )
            )));
        }
        if layer.groups() > 1 {
            return self.run_grouped(plan, ifm, weights);
        }
        plan.check_layout_supported()?;
        if plan.algorithm() == MappingAlgorithm::Smd && plan.duplication() > 1 {
            self.run_smd(plan, ifm, weights)
        } else {
            self.run_windowed(plan, ifm, weights)
        }
    }

    /// Executes a grouped (possibly depthwise) layer: each channel
    /// group is a dense convolution mapped with the same algorithm on
    /// the same array, run independently, and written into its slice of
    /// the output. The cost model maps groups sequentially (per-group
    /// cycles × `groups`), and the per-group plan is the dense plan of
    /// the per-group shape, so the summed executed cycles equal the
    /// grouped plan's prediction — asserted here as a consistency
    /// guard.
    fn run_grouped<T: Scalar>(
        &self,
        plan: &MappingPlan,
        ifm: &Tensor3<T>,
        weights: &Tensor4<T>,
    ) -> Result<SimRun<T>> {
        let layer = plan.layer();
        let groups = layer.groups();
        let icg = layer.in_channels_per_group();
        let ocg = layer.out_channels_per_group();
        let sub_layer = ConvLayer::builder(layer.name())
            .input(layer.input_h(), layer.input_w())
            .kernel(layer.kernel_h(), layer.kernel_w())
            .channels(icg, ocg)
            .stride(layer.stride())
            .padding(layer.padding())
            .dilation(layer.dilation())
            .build()
            .map_err(|e| SimError::new(e.to_string()))?;
        let sub_plan = plan.algorithm().plan(&sub_layer, plan.array())?;
        if sub_plan.cycles() * groups as u64 != plan.cycles() {
            return Err(SimError::new(format!(
                "grouped plan predicts {} cycles but {} groups x {} per-group cycles disagree",
                plan.cycles(),
                groups,
                sub_plan.cycles()
            )));
        }
        let (oh, ow) = layer.output_dims();
        let (h, w) = (layer.input_h(), layer.input_w());
        let (kh, kw) = (layer.kernel_h(), layer.kernel_w());
        let mut out = Tensor3::zeros(layer.out_channels(), oh, ow);
        let mut stats = RunStats::new();
        for g in 0..groups {
            let mut gin = Tensor3::zeros(icg, h, w);
            for c in 0..icg {
                for y in 0..h {
                    for x in 0..w {
                        gin.set(c, y, x, ifm.get(g * icg + c, y, x));
                    }
                }
            }
            let mut gw = Tensor4::zeros(ocg, icg, kh, kw);
            for o in 0..ocg {
                for c in 0..icg {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            gw.set(o, c, ky, kx, weights.get(g * ocg + o, c, ky, kx));
                        }
                    }
                }
            }
            let run = self.run(&sub_plan, &gin, &gw)?;
            for o in 0..ocg {
                for y in 0..oh {
                    for x in 0..ow {
                        out.set(g * ocg + o, y, x, run.ofm().get(o, y, x));
                    }
                }
            }
            stats.absorb(run.stats());
        }
        Ok(SimRun { ofm: out, stats })
    }

    fn run_windowed<T: Scalar>(
        &self,
        plan: &MappingPlan,
        ifm: &Tensor3<T>,
        weights: &Tensor4<T>,
    ) -> Result<SimRun<T>> {
        let layer = plan.layer();
        let (oh, ow) = layer.output_dims();
        let pad = layer.padding() as isize;
        let mut out = Tensor3::zeros(layer.out_channels(), oh, ow);
        let mut stats = RunStats::new();

        let positions = pw_positions(plan);
        // Clamped edge positions re-cover some windows; give each window a
        // unique owning position so partial sums accumulate exactly once.
        let (wpp_x, wpp_y) = pim_mapping::schedule::windows_per_pw(plan);
        let mut owner = vec![usize::MAX; oh * ow];
        for (pidx, pos) in positions.iter().enumerate() {
            for wy in 0..wpp_y {
                for wx in 0..wpp_x {
                    let slot = &mut owner[(pos.first_win_y + wy) * ow + pos.first_win_x + wx];
                    if *slot == usize::MAX {
                        *slot = pidx;
                    }
                }
            }
        }

        let mut input = Vec::new();
        for t in 0..plan.ar_cycles() {
            for u in 0..plan.ac_cycles() {
                let layout = TileLayout::build(plan, t, u)?;
                let mut xbar = Crossbar::new(layout.rows_used(), layout.cols_used());
                xbar.program_layout(layout.cells(), weights)?;
                stats.record_programming();
                for (pidx, pos) in positions.iter().enumerate() {
                    input.clear();
                    for src in layout.row_sources() {
                        let iy = pos.origin_y as isize + src.dy as isize - pad;
                        let ix = pos.origin_x as isize + src.dx as isize - pad;
                        input.push(ifm.get_padded(src.ic, iy, ix));
                    }
                    let result = xbar.mvm(&input)?;
                    stats.record_cycle(
                        &self.energy,
                        layout.rows_used(),
                        layout.cols_used(),
                        layout.used_cells(),
                    );
                    for (col, sink) in layout.col_sinks().iter().enumerate() {
                        let gy = pos.first_win_y + sink.wy;
                        let gx = pos.first_win_x + sink.wx;
                        if owner[gy * ow + gx] == pidx {
                            out.add_assign_at(sink.oc, gy, gx, result[col]);
                        }
                    }
                }
            }
        }
        Ok(SimRun { ofm: out, stats })
    }

    fn run_smd<T: Scalar>(
        &self,
        plan: &MappingPlan,
        ifm: &Tensor3<T>,
        weights: &Tensor4<T>,
    ) -> Result<SimRun<T>> {
        let layer = plan.layer();
        let (oh, ow) = layer.output_dims();
        let pad = layer.padding() as isize;
        let stride = layer.stride();
        let mut out = Tensor3::zeros(layer.out_channels(), oh, ow);
        let mut stats = RunStats::new();

        let layout = SmdLayout::build(plan)?;
        let mut xbar = Crossbar::new(layout.rows_used(), layout.cols_used());
        xbar.program_layout(layout.cells(), weights)?;
        stats.record_programming();

        let d = layout.duplication();
        let n_windows = (oh * ow) as u64;
        let (kw, kh) = (layer.kernel_w(), layer.kernel_h());
        let ic = layer.in_channels();
        let oc = layer.out_channels();
        let mut input = vec![T::ZERO; layout.rows_used()];
        let mut cycle_start = 0u64;
        while cycle_start < n_windows {
            input.fill(T::ZERO);
            for copy in 0..d {
                let w_idx = cycle_start + copy as u64;
                if w_idx >= n_windows {
                    continue;
                }
                let gy = (w_idx as usize) / ow;
                let gx = (w_idx as usize) % ow;
                let mut row = copy * layout.kernel_rows();
                for c in 0..ic {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let iy = (gy * stride + ky * layer.dilation()) as isize - pad;
                            let ix = (gx * stride + kx * layer.dilation()) as isize - pad;
                            input[row] = ifm.get_padded(c, iy, ix);
                            row += 1;
                        }
                    }
                }
            }
            let result = xbar.mvm(&input)?;
            stats.record_cycle(
                &self.energy,
                layout.rows_used(),
                layout.cols_used(),
                layout.used_cells(),
            );
            for copy in 0..d {
                let w_idx = cycle_start + copy as u64;
                if w_idx >= n_windows {
                    continue;
                }
                let gy = (w_idx as usize) / ow;
                let gx = (w_idx as usize) % ow;
                for o in 0..oc {
                    out.add_assign_at(o, gy, gx, result[copy * oc + o]);
                }
            }
            cycle_start += d as u64;
        }
        Ok(SimRun { ofm: out, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::PimArray;
    use pim_tensor::{conv2d_direct, gen};

    fn arr(r: usize, c: usize) -> PimArray {
        PimArray::new(r, c).unwrap()
    }

    fn check_layer(plan: &MappingPlan, seed: u64) {
        let layer = plan.layer();
        let ifm = gen::random3::<i64>(layer.in_channels(), layer.input_h(), layer.input_w(), seed);
        let weights = gen::random4::<i64>(
            layer.out_channels(),
            layer.in_channels(),
            layer.kernel_h(),
            layer.kernel_w(),
            seed ^ 0x5a5a,
        );
        let run = Engine::new().run(plan, &ifm, &weights).unwrap();
        let reference = conv2d_direct(&ifm, &weights, layer_params(layer)).unwrap();
        assert_eq!(run.ofm(), &reference, "{} mismatch", plan.algorithm());
        assert_eq!(
            run.stats().computing_cycles,
            plan.cycles(),
            "{} cycle count mismatch",
            plan.algorithm()
        );
    }

    #[test]
    fn im2col_execution_matches_reference() {
        let l = ConvLayer::square("c", 8, 3, 3, 5).unwrap();
        let plan = MappingAlgorithm::Im2col.plan(&l, arr(32, 16)).unwrap();
        check_layer(&plan, 11);
    }

    #[test]
    fn im2col_with_row_tiling_matches_reference() {
        // Kernel rows 27 on a 16-row array: AR = 2, dense straddling.
        let l = ConvLayer::square("c", 6, 3, 3, 4).unwrap();
        let plan = MappingAlgorithm::Im2col.plan(&l, arr(16, 8)).unwrap();
        assert!(plan.ar_cycles() > 1);
        check_layer(&plan, 12);
    }

    #[test]
    fn vw_execution_matches_reference() {
        let l = ConvLayer::square("c", 10, 3, 4, 6).unwrap();
        let plan = MappingAlgorithm::VwSdk.plan(&l, arr(64, 48)).unwrap();
        assert!(plan.windows_in_pw() > 1, "expected a real parallel window");
        check_layer(&plan, 13);
    }

    #[test]
    fn vw_with_channel_tiling_matches_reference() {
        // Force AR > 1: 8 channels, ICt limited by a small array.
        let l = ConvLayer::square("c", 9, 3, 8, 6).unwrap();
        let plan = MappingAlgorithm::VwSdk.plan(&l, arr(48, 32)).unwrap();
        check_layer(&plan, 14);
    }

    #[test]
    fn sdk_execution_matches_reference() {
        let l = ConvLayer::square("c", 12, 3, 4, 8).unwrap();
        let plan = MappingAlgorithm::Sdk.plan(&l, arr(64, 64)).unwrap();
        check_layer(&plan, 15);
    }

    #[test]
    fn smd_execution_matches_reference() {
        let l = ConvLayer::square("c", 8, 3, 2, 3).unwrap();
        let plan = MappingAlgorithm::Smd.plan(&l, arr(64, 64)).unwrap();
        assert!(plan.duplication() > 1);
        check_layer(&plan, 16);
    }

    #[test]
    fn strided_padded_layer_matches_reference() {
        let l = ConvLayer::builder("sp")
            .input(9, 9)
            .kernel(3, 3)
            .channels(2, 4)
            .stride(2)
            .padding(1)
            .build()
            .unwrap();
        for alg in [MappingAlgorithm::Im2col, MappingAlgorithm::VwSdk] {
            let plan = alg.plan(&l, arr(48, 32)).unwrap();
            check_layer(&plan, 17);
        }
    }

    #[test]
    fn engine_rejects_mismatched_tensors() {
        let l = ConvLayer::square("c", 8, 3, 2, 3).unwrap();
        let plan = MappingAlgorithm::Im2col.plan(&l, arr(32, 32)).unwrap();
        let bad_ifm = gen::random3::<i64>(3, 8, 8, 1);
        let weights = gen::random4::<i64>(3, 2, 3, 3, 2);
        assert!(Engine::new().run(&plan, &bad_ifm, &weights).is_err());
        let ifm = gen::random3::<i64>(2, 8, 8, 1);
        let bad_w = gen::random4::<i64>(3, 2, 5, 5, 2);
        assert!(Engine::new().run(&plan, &ifm, &bad_w).is_err());
    }

    #[test]
    fn stats_count_programmings_and_conversions() {
        let l = ConvLayer::square("c", 6, 3, 3, 4).unwrap();
        let plan = MappingAlgorithm::Im2col.plan(&l, arr(16, 8)).unwrap();
        let ifm = gen::random3::<i64>(3, 6, 6, 3);
        let weights = gen::random4::<i64>(4, 3, 3, 3, 4);
        let run = Engine::new().run(&plan, &ifm, &weights).unwrap();
        let s = run.stats();
        assert_eq!(s.array_programmings, plan.ar_cycles() * plan.ac_cycles());
        assert!(s.adc_conversions > 0);
        assert!(s.dac_conversions > 0);
        assert!(s.energy_pj() > 0.0);
    }

    #[test]
    fn float_execution_is_close_to_reference() {
        let l = ConvLayer::square("c", 8, 3, 2, 3).unwrap();
        let plan = MappingAlgorithm::VwSdk.plan(&l, arr(64, 64)).unwrap();
        let ifm = gen::random3::<f64>(2, 8, 8, 5);
        let weights = gen::random4::<f64>(3, 2, 3, 3, 6);
        let run = Engine::new().run(&plan, &ifm, &weights).unwrap();
        let reference = conv2d_direct(&ifm, &weights, layer_params(&l)).unwrap();
        for (a, b) in run.ofm().as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
