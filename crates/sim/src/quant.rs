//! Finite-precision device modelling.
//!
//! Real crossbars store weights in low-precision cells, drive inputs
//! through DACs and read columns through saturating ADCs. This module
//! quantizes an `f64` execution accordingly so the extension experiments
//! can study accuracy-vs-precision without leaving the simulator. The
//! paper itself assumes ideal devices (its metric is cycle count), so all
//! paper-facing experiments use the exact integer path instead.

use crate::engine::{layer_params, Engine};
use crate::Result;
use pim_mapping::MappingPlan;
use pim_tensor::{conv2d_direct, Tensor3, Tensor4};

/// Precision configuration of a quantized execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantSpec {
    /// Weight precision in bits (symmetric signed).
    pub weight_bits: u8,
    /// Input (DAC) precision in bits.
    pub input_bits: u8,
}

impl QuantSpec {
    /// 8-bit weights and inputs, the common inference configuration.
    pub fn int8() -> Self {
        Self {
            weight_bits: 8,
            input_bits: 8,
        }
    }

    /// 4-bit weights and inputs.
    pub fn int4() -> Self {
        Self {
            weight_bits: 4,
            input_bits: 4,
        }
    }
}

/// Symmetrically quantizes `value` onto a `bits`-bit signed grid scaled to
/// `max_abs`, returning the dequantized value.
///
/// `max_abs <= 0` or zero grids return 0.
pub fn quantize_symmetric(value: f64, bits: u8, max_abs: f64) -> f64 {
    if max_abs <= 0.0 || bits == 0 {
        return 0.0;
    }
    let levels = ((1u64 << (bits - 1)) - 1) as f64;
    if levels == 0.0 {
        return 0.0;
    }
    let step = max_abs / levels;
    (value / step).round().clamp(-levels, levels) * step
}

fn max_abs(values: &[f64]) -> f64 {
    values.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Result of a quantized execution compared to the exact reference.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantRun {
    /// The quantized output feature map.
    pub ofm: Tensor3<f64>,
    /// Root-mean-square error against the exact (unquantized) reference.
    pub rmse: f64,
    /// Maximum absolute error.
    pub max_abs_error: f64,
}

/// Executes a plan with weights and inputs quantized per `spec`, and
/// reports the error against the exact reference convolution.
///
/// # Errors
///
/// Returns [`crate::SimError`] under the same conditions as
/// [`Engine::run`].
pub fn run_quantized(
    plan: &MappingPlan,
    ifm: &Tensor3<f64>,
    weights: &Tensor4<f64>,
    spec: QuantSpec,
) -> Result<QuantRun> {
    let layer = plan.layer();
    let w_scale = max_abs(weights.as_slice());
    let x_scale = max_abs(ifm.as_slice());

    let (c, h, w) = ifm.dims();
    let mut q_ifm = Tensor3::zeros(c, h, w);
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                q_ifm.set(
                    ci,
                    y,
                    x,
                    quantize_symmetric(ifm.get(ci, y, x), spec.input_bits, x_scale),
                );
            }
        }
    }
    let (oc, ic, kh, kw) = weights.dims();
    let mut q_w = Tensor4::zeros(oc, ic, kh, kw);
    for o in 0..oc {
        for ci in 0..ic {
            for ky in 0..kh {
                for kx in 0..kw {
                    q_w.set(
                        o,
                        ci,
                        ky,
                        kx,
                        quantize_symmetric(weights.get(o, ci, ky, kx), spec.weight_bits, w_scale),
                    );
                }
            }
        }
    }

    let run = Engine::new().run(plan, &q_ifm, &q_w)?;
    let exact = conv2d_direct(ifm, weights, layer_params(layer))?;
    let mut sum_sq = 0.0;
    let mut max_err = 0.0f64;
    for (a, b) in run.ofm().as_slice().iter().zip(exact.as_slice()) {
        let e = (a - b).abs();
        sum_sq += e * e;
        max_err = max_err.max(e);
    }
    let rmse = (sum_sq / exact.as_slice().len() as f64).sqrt();
    Ok(QuantRun {
        ofm: run.into_ofm(),
        rmse,
        max_abs_error: max_err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::PimArray;
    use pim_mapping::MappingAlgorithm;
    use pim_nets::ConvLayer;
    use pim_tensor::gen;

    #[test]
    fn quantizer_is_idempotent_on_grid_points() {
        let q = quantize_symmetric(0.5, 8, 1.0);
        assert_eq!(quantize_symmetric(q, 8, 1.0), q);
        assert_eq!(quantize_symmetric(0.0, 8, 1.0), 0.0);
    }

    #[test]
    fn quantizer_clamps_to_range() {
        let q = quantize_symmetric(10.0, 4, 1.0);
        assert!(q <= 1.0 + 1e-12);
        let qn = quantize_symmetric(-10.0, 4, 1.0);
        assert!(qn >= -1.0 - 1e-12);
    }

    #[test]
    fn zero_bits_or_scale_yield_zero() {
        assert_eq!(quantize_symmetric(0.7, 0, 1.0), 0.0);
        assert_eq!(quantize_symmetric(0.7, 8, 0.0), 0.0);
    }

    #[test]
    fn more_bits_mean_less_error() {
        let l = ConvLayer::square("c", 8, 3, 2, 3).unwrap();
        let plan = MappingAlgorithm::VwSdk
            .plan(&l, PimArray::new(64, 64).unwrap())
            .unwrap();
        let ifm = gen::random3::<f64>(2, 8, 8, 7);
        let weights = gen::random4::<f64>(3, 2, 3, 3, 8);
        let q4 = run_quantized(&plan, &ifm, &weights, QuantSpec::int4()).unwrap();
        let q8 = run_quantized(&plan, &ifm, &weights, QuantSpec::int8()).unwrap();
        assert!(q8.rmse <= q4.rmse);
        // Output magnitudes are O(10^2); 8-bit quantization should keep
        // the error within a percent of that, 4-bit visibly larger.
        assert!(q8.rmse < 2.0, "int8 rmse {}", q8.rmse);
        assert!(
            q4.rmse > q8.rmse * 2.0,
            "quantization error should grow sharply at 4 bits"
        );
    }
}
