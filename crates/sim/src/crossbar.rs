//! The programmable crossbar state.

use crate::{Result, SimError};
use pim_mapping::layout::CellAssignment;
use pim_tensor::{Scalar, Tensor2, Tensor4};

/// One crossbar array holding programmed weights.
///
/// The convention throughout the project: rows are inputs, columns are
/// outputs, and one [`Crossbar::mvm`] — the per-column accumulation of
/// `input × conductance` — is one computing cycle.
///
/// # Example
///
/// ```
/// use pim_sim::Crossbar;
///
/// let mut xbar: Crossbar<i64> = Crossbar::new(2, 2);
/// xbar.program_cell(0, 0, 3);
/// xbar.program_cell(1, 1, 5);
/// assert_eq!(xbar.mvm(&[10, 100]).unwrap(), vec![30, 500]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Crossbar<T> {
    cells: Tensor2<T>,
    programmed: usize,
}

impl<T: Scalar> Crossbar<T> {
    /// Creates an erased (all-zero) crossbar of the given geometry.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            cells: Tensor2::zeros(rows, cols),
            programmed: 0,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.cells.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cells.cols()
    }

    /// Number of `program_cell` writes since the last erase.
    pub fn programmed_cells(&self) -> usize {
        self.programmed
    }

    /// Writes one cell.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn program_cell(&mut self, row: usize, col: usize, weight: T) {
        self.cells.set(row, col, weight);
        self.programmed += 1;
    }

    /// Programs a tile layout's cells, fetching weight values from the
    /// weight bank.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any assignment exceeds the crossbar or the
    /// weight bank dimensions.
    pub fn program_layout(&mut self, cells: &[CellAssignment], weights: &Tensor4<T>) -> Result<()> {
        let (oc, ic, kh, kw) = weights.dims();
        for cell in cells {
            if cell.row >= self.rows() || cell.col >= self.cols() {
                return Err(SimError::new(format!(
                    "cell ({}, {}) outside {}x{} crossbar",
                    cell.row,
                    cell.col,
                    self.rows(),
                    self.cols()
                )));
            }
            let w = cell.weight;
            if w.oc >= oc || w.ic >= ic || w.ky >= kh || w.kx >= kw {
                return Err(SimError::new(format!(
                    "weight coordinate ({}, {}, {}, {}) outside {}x{}x{}x{} bank",
                    w.oc, w.ic, w.ky, w.kx, oc, ic, kh, kw
                )));
            }
            self.program_cell(cell.row, cell.col, weights.get(w.oc, w.ic, w.ky, w.kx));
        }
        Ok(())
    }

    /// Erases all cells to zero.
    pub fn erase(&mut self) {
        self.cells = Tensor2::zeros(self.rows(), self.cols());
        self.programmed = 0;
    }

    /// One analog matrix-vector multiply: drives `input` into the rows and
    /// returns the per-column accumulations.
    ///
    /// Thin allocating wrapper around [`Crossbar::mvm_into`]; hot paths
    /// (the engine's cycle loop) use the `_into` form to reuse one
    /// output buffer across cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if `input.len() != rows`.
    pub fn mvm(&self, input: &[T]) -> Result<Vec<T>> {
        let mut out = Vec::new();
        self.mvm_into(input, &mut out)?;
        Ok(out)
    }

    /// [`Crossbar::mvm`] into a caller-provided buffer (cleared and
    /// resized to `cols`), avoiding the per-cycle allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if `input.len() != rows`.
    pub fn mvm_into(&self, input: &[T], out: &mut Vec<T>) -> Result<()> {
        pim_tensor::matmul::column_mvm_into(&self.cells, input, out).map_err(SimError::from)
    }

    /// `batch` independent MVMs against the same programmed cells in one
    /// pass: `inputs` packs `batch` row-vectors back to back
    /// (`inputs[bi * rows + r]`), and `out` receives `batch` column
    /// accumulations (`out[bi * cols + c]`).
    ///
    /// Each programmed row is read once per batch instead of once per
    /// input vector — the cache-locality win batched simulation is built
    /// on. Per-element results are bit-identical to [`Crossbar::mvm`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if `batch == 0` or
    /// `inputs.len() != batch * rows`.
    pub fn mvm_batch_into(&self, inputs: &[T], batch: usize, out: &mut Vec<T>) -> Result<()> {
        pim_tensor::matmul::column_mvm_batch_into(&self.cells, inputs, batch, out)
            .map_err(SimError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_mapping::layout::{CellAssignment, WeightCoord};
    use pim_tensor::gen;

    #[test]
    fn erase_clears_state() {
        let mut x: Crossbar<i32> = Crossbar::new(2, 2);
        x.program_cell(1, 1, 7);
        assert_eq!(x.programmed_cells(), 1);
        x.erase();
        assert_eq!(x.programmed_cells(), 0);
        assert_eq!(x.mvm(&[1, 1]).unwrap(), vec![0, 0]);
    }

    #[test]
    fn mvm_rejects_wrong_input_length() {
        let x: Crossbar<i32> = Crossbar::new(3, 2);
        assert!(x.mvm(&[1, 2]).is_err());
        assert!(x.mvm(&[1, 2, 3]).is_ok());
    }

    #[test]
    fn program_layout_reads_weight_bank() {
        let weights = gen::ramp4::<i64>(2, 1, 2, 2);
        let mut x: Crossbar<i64> = Crossbar::new(4, 2);
        let cells = vec![
            CellAssignment {
                row: 0,
                col: 0,
                weight: WeightCoord {
                    oc: 0,
                    ic: 0,
                    ky: 0,
                    kx: 0,
                },
            },
            CellAssignment {
                row: 3,
                col: 1,
                weight: WeightCoord {
                    oc: 1,
                    ic: 0,
                    ky: 1,
                    kx: 1,
                },
            },
        ];
        x.program_layout(&cells, &weights).unwrap();
        let y = x.mvm(&[1, 0, 0, 1]).unwrap();
        assert_eq!(y, vec![weights.get(0, 0, 0, 0), weights.get(1, 0, 1, 1)]);
    }

    #[test]
    fn mvm_into_reuses_a_dirty_buffer() {
        let mut x: Crossbar<i64> = Crossbar::new(2, 3);
        x.program_cell(0, 0, 2);
        x.program_cell(1, 2, 5);
        let mut out = vec![99, 99, 99, 99, 99];
        x.mvm_into(&[3, 4], &mut out).unwrap();
        assert_eq!(out, vec![6, 0, 20]);
        assert_eq!(x.mvm(&[3, 4]).unwrap(), out);
    }

    #[test]
    fn batched_mvm_matches_per_element_mvm() {
        let weights = gen::ramp4::<i64>(4, 2, 2, 2);
        let mut x: Crossbar<i64> = Crossbar::new(8, 4);
        for r in 0..8 {
            for c in 0..4 {
                x.program_cell(r, c, weights.get(c, r % 2, (r / 2) % 2, r / 4));
            }
        }
        let a: Vec<i64> = (0..8).map(|v| v - 3).collect();
        let b: Vec<i64> = (0..8).map(|v| 2 * v - 7).collect();
        let packed: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        let mut out = Vec::new();
        x.mvm_batch_into(&packed, 2, &mut out).unwrap();
        let mut expect = x.mvm(&a).unwrap();
        expect.extend(x.mvm(&b).unwrap());
        assert_eq!(out, expect);
        assert!(x.mvm_batch_into(&packed, 0, &mut out).is_err());
        assert!(x.mvm_batch_into(&packed[1..], 2, &mut out).is_err());
    }

    #[test]
    fn program_layout_validates_bounds() {
        let weights = gen::ramp4::<i64>(1, 1, 2, 2);
        let mut x: Crossbar<i64> = Crossbar::new(2, 2);
        let oob_cell = vec![CellAssignment {
            row: 2,
            col: 0,
            weight: WeightCoord {
                oc: 0,
                ic: 0,
                ky: 0,
                kx: 0,
            },
        }];
        assert!(x.program_layout(&oob_cell, &weights).is_err());
        let oob_weight = vec![CellAssignment {
            row: 0,
            col: 0,
            weight: WeightCoord {
                oc: 1,
                ic: 0,
                ky: 0,
                kx: 0,
            },
        }];
        assert!(x.program_layout(&oob_weight, &weights).is_err());
    }
}
