//! End-to-end verification of mapping plans against the reference
//! convolution.

use crate::engine::{layer_params, Engine};
use crate::Result;
use pim_mapping::MappingPlan;
use pim_tensor::{conv2d_direct, conv2d_grouped, gen};

/// Outcome of verifying one plan with generated data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// `true` when simulated output equals the reference convolution
    /// element-for-element (exact `i64` arithmetic).
    pub matches: bool,
    /// Computing cycles executed by the engine.
    pub executed_cycles: u64,
    /// Cycles the analytical model predicted.
    pub predicted_cycles: u64,
    /// Number of output elements compared.
    pub elements: usize,
    /// Number of mismatching elements (0 when `matches`).
    pub mismatches: usize,
}

impl VerifyReport {
    /// `true` when the output matched *and* the executed cycle count
    /// equals the analytical prediction.
    pub fn is_fully_consistent(&self) -> bool {
        self.matches && self.executed_cycles == self.predicted_cycles
    }
}

/// Runs a plan on deterministic pseudo-random `i64` tensors and compares
/// the simulated output with the reference convolution (grouped layers
/// verify against the grouped reference).
///
/// # Errors
///
/// Returns [`crate::SimError`] if the plan cannot be simulated.
pub fn verify_plan(plan: &MappingPlan, seed: u64) -> Result<VerifyReport> {
    let layer = plan.layer();
    let ifm = gen::random3::<i64>(layer.in_channels(), layer.input_h(), layer.input_w(), seed);
    let weights = gen::random4::<i64>(
        layer.out_channels(),
        layer.in_channels_per_group(),
        layer.kernel_h(),
        layer.kernel_w(),
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
    );
    let run = Engine::new().run(plan, &ifm, &weights)?;
    let reference = if layer.groups() > 1 {
        conv2d_grouped(&ifm, &weights, layer_params(layer), layer.groups())?
    } else {
        conv2d_direct(&ifm, &weights, layer_params(layer))?
    };
    let mismatches = run
        .ofm()
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .filter(|(a, b)| a != b)
        .count();
    Ok(VerifyReport {
        matches: mismatches == 0,
        executed_cycles: run.stats().computing_cycles,
        predicted_cycles: plan.cycles(),
        elements: reference.as_slice().len(),
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::PimArray;
    use pim_mapping::MappingAlgorithm;
    use pim_nets::ConvLayer;

    #[test]
    fn all_algorithms_verify_on_a_small_layer() {
        let l = ConvLayer::square("c", 9, 3, 3, 5).unwrap();
        let a = PimArray::new(64, 48).unwrap();
        for alg in MappingAlgorithm::all() {
            let plan = alg.plan(&l, a).unwrap();
            let report = verify_plan(&plan, 99).unwrap();
            assert!(report.is_fully_consistent(), "{alg}: {report:?}");
            assert_eq!(report.elements, 5 * 49);
        }
    }

    #[test]
    fn grouped_layers_verify_bit_exactly() {
        let dw = ConvLayer::builder("dw")
            .input(8, 8)
            .kernel(3, 3)
            .channels(4, 4)
            .groups(4)
            .build()
            .unwrap();
        for alg in MappingAlgorithm::paper_trio() {
            let plan = alg.plan(&dw, PimArray::new(64, 64).unwrap()).unwrap();
            let report = verify_plan(&plan, 1).unwrap();
            assert!(report.is_fully_consistent(), "{alg}: {report:?}");
        }
    }

    #[test]
    fn grouped_non_depthwise_layers_verify_too() {
        // 8 channels in 2 groups: each group is a dense 4->3 conv.
        let grouped = ConvLayer::builder("g")
            .input(9, 9)
            .kernel(3, 3)
            .channels(8, 6)
            .groups(2)
            .stride(2)
            .padding(1)
            .build()
            .unwrap();
        for alg in MappingAlgorithm::paper_trio() {
            let plan = alg.plan(&grouped, PimArray::new(48, 32).unwrap()).unwrap();
            let report = verify_plan(&plan, 9).unwrap();
            assert!(report.is_fully_consistent(), "{alg}: {report:?}");
        }
    }
}
