//! Programmed-state reuse: split plan execution into a one-time
//! **program phase** and a reusable per-IFM **stream phase**.
//!
//! The paper's throughput argument rests on amortization — crossbars are
//! programmed once and then reused across every input window. The
//! original [`Engine::run`](crate::Engine::run) rebuilt and reprogrammed
//! every tile on every call, so simulating a batch of N inputs paid the
//! layout/programming cost N times. A [`ProgrammedStage`] captures the
//! post-programming state of one mapping plan (tiles, crossbars,
//! schedule) so that:
//!
//! * [`ProgrammedStage::program`] runs once per deployment, recording
//!   one `array_programmings` count per tile;
//! * [`ProgrammedStage::stream_batch`] pushes any number of input
//!   feature maps through the programmed pipeline, using batched MVMs
//!   ([`Crossbar::mvm_batch_into`]) so each programmed row is read once
//!   per batch rather than once per input;
//! * [`ProgrammedStage::stream_stats`] reports the per-input execution
//!   counters analytically (they depend only on the plan geometry, never
//!   on input values), which keeps batch reports deterministic and
//!   independent of worker sharding.
//!
//! Bit-exactness is preserved: for every output element the partial sums
//! accumulate in exactly the order of the single-IFM engine (tiles in
//! (AR, AC) order, positions in schedule order, rows ascending), so a
//! batched stream is bit-identical to N independent runs even for
//! floating-point scalars.

use crate::crossbar::Crossbar;
use crate::metrics::RunStats;
use crate::{Result, SimError};
use pim_arch::energy::EnergyModel;
use pim_mapping::layout::{SmdLayout, TileLayout};
use pim_mapping::schedule::{pw_positions, windows_per_pw, PwPosition};
use pim_mapping::{MappingAlgorithm, MappingPlan};
use pim_nets::ConvLayer;
use pim_tensor::{Scalar, Tensor3, Tensor4};

/// One (AR, AC) tile: its layout plus the crossbar programmed from it.
#[derive(Debug, Clone, PartialEq)]
struct WindowedTile<T> {
    layout: TileLayout,
    xbar: Crossbar<T>,
}

/// The programmed state behind one plan, by mapping flavour.
#[derive(Debug, Clone, PartialEq)]
enum StageKind<T> {
    /// Window-parallel mappings (im2col, SDK, VW-SDK, non-duplicated
    /// SMD): one crossbar per (AR, AC) tile, streamed over the
    /// parallel-window schedule.
    Windowed {
        tiles: Vec<WindowedTile<T>>,
        positions: Vec<PwPosition>,
        /// Owning position index per output window (clamped edge
        /// positions re-cover windows; the first claimant accumulates).
        owner: Vec<usize>,
        windows_per_pw: (usize, usize),
    },
    /// Duplicated SMD: one crossbar holding `d` kernel copies.
    Smd {
        layout: SmdLayout,
        xbar: Crossbar<T>,
    },
    /// Grouped convolution: one programmed sub-stage per channel group.
    Grouped { groups: Vec<ProgrammedStage<T>> },
}

/// A mapping plan programmed into reusable crossbar state; see the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgrammedStage<T> {
    plan: MappingPlan,
    kind: StageKind<T>,
}

impl<T: Scalar> ProgrammedStage<T> {
    /// Programs `plan`'s tiles with `weights`, recording one programming
    /// per tile into `stats`. The returned stage borrows nothing — it
    /// can be streamed any number of times, shared across threads
    /// read-only.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if `weights` does not match the layer's
    /// kernel shape, the plan has no cell-level layout, or (grouped
    /// layers) the per-group plan disagrees with the grouped
    /// prediction.
    pub fn program(plan: &MappingPlan, weights: &Tensor4<T>, stats: &mut RunStats) -> Result<Self> {
        let layer = plan.layer();
        if weights.dims()
            != (
                layer.out_channels(),
                layer.in_channels_per_group(),
                layer.kernel_h(),
                layer.kernel_w(),
            )
        {
            return Err(SimError::new(format!(
                "weights {:?} do not match layer kernel {:?}",
                weights.dims(),
                (
                    layer.out_channels(),
                    layer.in_channels_per_group(),
                    layer.kernel_h(),
                    layer.kernel_w()
                )
            )));
        }
        if layer.groups() > 1 {
            return Self::program_grouped(plan, weights, stats);
        }
        plan.check_layout_supported()?;
        let kind = if plan.algorithm() == MappingAlgorithm::Smd && plan.duplication() > 1 {
            let layout = SmdLayout::build(plan)?;
            let mut xbar = Crossbar::new(layout.rows_used(), layout.cols_used());
            xbar.program_layout(layout.cells(), weights)?;
            stats.record_programming();
            StageKind::Smd { layout, xbar }
        } else {
            let mut tiles = Vec::new();
            for t in 0..plan.ar_cycles() {
                for u in 0..plan.ac_cycles() {
                    let layout = TileLayout::build(plan, t, u)?;
                    let mut xbar = Crossbar::new(layout.rows_used(), layout.cols_used());
                    xbar.program_layout(layout.cells(), weights)?;
                    stats.record_programming();
                    tiles.push(WindowedTile { layout, xbar });
                }
            }
            let (oh, ow) = plan.layer().output_dims();
            let positions = pw_positions(plan);
            let wpp = windows_per_pw(plan);
            let mut owner = vec![usize::MAX; oh * ow];
            for (pidx, pos) in positions.iter().enumerate() {
                for wy in 0..wpp.1 {
                    for wx in 0..wpp.0 {
                        let slot = &mut owner[(pos.first_win_y + wy) * ow + pos.first_win_x + wx];
                        if *slot == usize::MAX {
                            *slot = pidx;
                        }
                    }
                }
            }
            StageKind::Windowed {
                tiles,
                positions,
                owner,
                windows_per_pw: wpp,
            }
        };
        Ok(Self {
            plan: plan.clone(),
            kind,
        })
    }

    /// Grouped layers program one independent sub-stage per channel
    /// group: the per-group plan is the dense plan of the per-group
    /// shape (guarded against the grouped prediction, as in the cost
    /// model), programmed with that group's slice of the weight bank.
    fn program_grouped(
        plan: &MappingPlan,
        weights: &Tensor4<T>,
        stats: &mut RunStats,
    ) -> Result<Self> {
        let layer = plan.layer();
        let groups = layer.groups();
        let icg = layer.in_channels_per_group();
        let ocg = layer.out_channels_per_group();
        let sub_layer = ConvLayer::builder(layer.name())
            .input(layer.input_h(), layer.input_w())
            .kernel(layer.kernel_h(), layer.kernel_w())
            .channels(icg, ocg)
            .stride(layer.stride())
            .padding(layer.padding())
            .dilation(layer.dilation())
            .build()
            .map_err(|e| SimError::new(e.to_string()))?;
        let sub_plan = plan.algorithm().plan(&sub_layer, plan.array())?;
        if sub_plan.cycles() * groups as u64 != plan.cycles() {
            return Err(SimError::new(format!(
                "grouped plan predicts {} cycles but {} groups x {} per-group cycles disagree",
                plan.cycles(),
                groups,
                sub_plan.cycles()
            )));
        }
        let (kh, kw) = (layer.kernel_h(), layer.kernel_w());
        let mut stages = Vec::with_capacity(groups);
        for g in 0..groups {
            let mut gw = Tensor4::zeros(ocg, icg, kh, kw);
            for o in 0..ocg {
                for c in 0..icg {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            gw.set(o, c, ky, kx, weights.get(g * ocg + o, c, ky, kx));
                        }
                    }
                }
            }
            stages.push(Self::program(&sub_plan, &gw, stats)?);
        }
        Ok(Self {
            plan: plan.clone(),
            kind: StageKind::Grouped { groups: stages },
        })
    }

    /// The plan this stage was programmed from.
    pub fn plan(&self) -> &MappingPlan {
        &self.plan
    }

    /// Replays the per-input execution counters (cycles, MACs, ADC/DAC
    /// conversions, energy) into `stats` — once per streamed input
    /// feature map. The counters depend only on the programmed geometry,
    /// so one replay per batch element reproduces exactly what N
    /// independent [`Engine::run`](crate::Engine::run) calls would have
    /// recorded.
    pub fn stream_stats(&self, energy: &EnergyModel, stats: &mut RunStats) {
        match &self.kind {
            StageKind::Windowed {
                tiles, positions, ..
            } => {
                for tile in tiles {
                    for _ in 0..positions.len() {
                        stats.record_cycle(
                            energy,
                            tile.layout.rows_used(),
                            tile.layout.cols_used(),
                            tile.layout.used_cells(),
                        );
                    }
                }
            }
            StageKind::Smd { layout, .. } => {
                let (oh, ow) = self.plan.layer().output_dims();
                let cycles = (oh * ow).div_ceil(layout.duplication());
                for _ in 0..cycles {
                    stats.record_cycle(
                        energy,
                        layout.rows_used(),
                        layout.cols_used(),
                        layout.used_cells(),
                    );
                }
            }
            StageKind::Grouped { groups } => {
                for group in groups {
                    group.stream_stats(energy, stats);
                }
            }
        }
    }

    /// Streams a batch of input feature maps through the programmed
    /// pipeline, returning one output feature map per input (same
    /// order). Pure compute: no programming happens here, and the stage
    /// is immutable, so concurrent calls from several threads are safe.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the batch is empty or any input's
    /// dimensions disagree with the layer.
    pub fn stream_batch(&self, ifms: &[Tensor3<T>]) -> Result<Vec<Tensor3<T>>> {
        if ifms.is_empty() {
            return Err(SimError::new("cannot stream an empty batch"));
        }
        let layer = self.plan.layer();
        for ifm in ifms {
            if ifm.dims() != (layer.in_channels(), layer.input_h(), layer.input_w()) {
                return Err(SimError::new(format!(
                    "input {:?} does not match layer {:?}",
                    ifm.dims(),
                    (layer.in_channels(), layer.input_h(), layer.input_w())
                )));
            }
        }
        match &self.kind {
            StageKind::Windowed {
                tiles,
                positions,
                owner,
                ..
            } => self.stream_windowed(tiles, positions, owner, ifms),
            StageKind::Smd { layout, xbar } => self.stream_smd(layout, xbar, ifms),
            StageKind::Grouped { groups } => self.stream_grouped(groups, ifms),
        }
    }

    fn stream_windowed(
        &self,
        tiles: &[WindowedTile<T>],
        positions: &[PwPosition],
        owner: &[usize],
        ifms: &[Tensor3<T>],
    ) -> Result<Vec<Tensor3<T>>> {
        let layer = self.plan.layer();
        let (oh, ow) = layer.output_dims();
        let pad = layer.padding() as isize;
        let b = ifms.len();
        let mut outs: Vec<Tensor3<T>> = (0..b)
            .map(|_| Tensor3::zeros(layer.out_channels(), oh, ow))
            .collect();
        let mut inputs: Vec<T> = Vec::new();
        let mut result: Vec<T> = Vec::new();
        for tile in tiles {
            let rows = tile.layout.rows_used();
            let cols = tile.layout.cols_used();
            for (pidx, pos) in positions.iter().enumerate() {
                inputs.clear();
                inputs.resize(b * rows, T::ZERO);
                for (r, src) in tile.layout.row_sources().iter().enumerate() {
                    let iy = pos.origin_y as isize + src.dy as isize - pad;
                    let ix = pos.origin_x as isize + src.dx as isize - pad;
                    for (bi, ifm) in ifms.iter().enumerate() {
                        inputs[bi * rows + r] = ifm.get_padded(src.ic, iy, ix);
                    }
                }
                tile.xbar.mvm_batch_into(&inputs, b, &mut result)?;
                for (col, sink) in tile.layout.col_sinks().iter().enumerate() {
                    let gy = pos.first_win_y + sink.wy;
                    let gx = pos.first_win_x + sink.wx;
                    if owner[gy * ow + gx] == pidx {
                        for (bi, out) in outs.iter_mut().enumerate() {
                            out.add_assign_at(sink.oc, gy, gx, result[bi * cols + col]);
                        }
                    }
                }
            }
        }
        Ok(outs)
    }

    fn stream_smd(
        &self,
        layout: &SmdLayout,
        xbar: &Crossbar<T>,
        ifms: &[Tensor3<T>],
    ) -> Result<Vec<Tensor3<T>>> {
        let layer = self.plan.layer();
        let (oh, ow) = layer.output_dims();
        let pad = layer.padding() as isize;
        let stride = layer.stride();
        let b = ifms.len();
        let mut outs: Vec<Tensor3<T>> = (0..b)
            .map(|_| Tensor3::zeros(layer.out_channels(), oh, ow))
            .collect();
        let d = layout.duplication();
        let rows = layout.rows_used();
        let cols = layout.cols_used();
        let n_windows = (oh * ow) as u64;
        let (kw, kh) = (layer.kernel_w(), layer.kernel_h());
        let ic = layer.in_channels();
        let oc = layer.out_channels();
        let mut inputs: Vec<T> = Vec::new();
        let mut result: Vec<T> = Vec::new();
        let mut cycle_start = 0u64;
        while cycle_start < n_windows {
            inputs.clear();
            inputs.resize(b * rows, T::ZERO);
            for copy in 0..d {
                let w_idx = cycle_start + copy as u64;
                if w_idx >= n_windows {
                    continue;
                }
                let gy = (w_idx as usize) / ow;
                let gx = (w_idx as usize) % ow;
                let mut row = copy * layout.kernel_rows();
                for c in 0..ic {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let iy = (gy * stride + ky * layer.dilation()) as isize - pad;
                            let ix = (gx * stride + kx * layer.dilation()) as isize - pad;
                            for (bi, ifm) in ifms.iter().enumerate() {
                                inputs[bi * rows + row] = ifm.get_padded(c, iy, ix);
                            }
                            row += 1;
                        }
                    }
                }
            }
            xbar.mvm_batch_into(&inputs, b, &mut result)?;
            for copy in 0..d {
                let w_idx = cycle_start + copy as u64;
                if w_idx >= n_windows {
                    continue;
                }
                let gy = (w_idx as usize) / ow;
                let gx = (w_idx as usize) % ow;
                for o in 0..oc {
                    for (bi, out) in outs.iter_mut().enumerate() {
                        out.add_assign_at(o, gy, gx, result[bi * cols + copy * oc + o]);
                    }
                }
            }
            cycle_start += d as u64;
        }
        Ok(outs)
    }

    fn stream_grouped(
        &self,
        groups: &[ProgrammedStage<T>],
        ifms: &[Tensor3<T>],
    ) -> Result<Vec<Tensor3<T>>> {
        let layer = self.plan.layer();
        let icg = layer.in_channels_per_group();
        let ocg = layer.out_channels_per_group();
        let (oh, ow) = layer.output_dims();
        let (h, w) = (layer.input_h(), layer.input_w());
        let b = ifms.len();
        let mut outs: Vec<Tensor3<T>> = (0..b)
            .map(|_| Tensor3::zeros(layer.out_channels(), oh, ow))
            .collect();
        for (g, stage) in groups.iter().enumerate() {
            let gins: Vec<Tensor3<T>> = ifms
                .iter()
                .map(|ifm| {
                    let mut gin = Tensor3::zeros(icg, h, w);
                    for c in 0..icg {
                        for y in 0..h {
                            for x in 0..w {
                                gin.set(c, y, x, ifm.get(g * icg + c, y, x));
                            }
                        }
                    }
                    gin
                })
                .collect();
            let gouts = stage.stream_batch(&gins)?;
            for (out, gout) in outs.iter_mut().zip(&gouts) {
                for o in 0..ocg {
                    for y in 0..oh {
                        for x in 0..ow {
                            out.set(g * ocg + o, y, x, gout.get(o, y, x));
                        }
                    }
                }
            }
        }
        Ok(outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use pim_arch::PimArray;
    use pim_tensor::gen;

    fn check_batched(plan: &MappingPlan, seed: u64) {
        let layer = plan.layer();
        let weights = gen::random4::<i64>(
            layer.out_channels(),
            layer.in_channels_per_group(),
            layer.kernel_h(),
            layer.kernel_w(),
            seed ^ 0xbeef,
        );
        let ifms: Vec<_> = (0..3)
            .map(|i| {
                gen::random3::<i64>(
                    layer.in_channels(),
                    layer.input_h(),
                    layer.input_w(),
                    seed + i,
                )
            })
            .collect();
        let mut stats = RunStats::new();
        let stage = ProgrammedStage::program(plan, &weights, &mut stats).unwrap();
        let outs = stage.stream_batch(&ifms).unwrap();
        let engine = Engine::new();
        for (ifm, out) in ifms.iter().zip(&outs) {
            let solo = engine.run(plan, ifm, &weights).unwrap();
            assert_eq!(solo.ofm(), out, "{} batched mismatch", plan.algorithm());
        }
        // Programming happened once per tile, not once per input.
        assert_eq!(
            stats.array_programmings,
            engine
                .run(plan, &ifms[0], &weights)
                .unwrap()
                .stats()
                .array_programmings
        );
    }

    #[test]
    fn batched_windowed_stream_matches_single_runs() {
        let l = ConvLayer::square("c", 10, 3, 4, 6).unwrap();
        let plan = MappingAlgorithm::VwSdk
            .plan(&l, PimArray::new(64, 48).unwrap())
            .unwrap();
        check_batched(&plan, 31);
    }

    #[test]
    fn batched_smd_stream_matches_single_runs() {
        let l = ConvLayer::square("c", 8, 3, 2, 3).unwrap();
        let plan = MappingAlgorithm::Smd
            .plan(&l, PimArray::new(64, 64).unwrap())
            .unwrap();
        assert!(plan.duplication() > 1);
        check_batched(&plan, 32);
    }

    #[test]
    fn batched_grouped_stream_matches_single_runs() {
        let l = ConvLayer::builder("dw")
            .input(8, 8)
            .kernel(3, 3)
            .channels(4, 4)
            .groups(4)
            .build()
            .unwrap();
        let plan = MappingAlgorithm::Im2col
            .plan(&l, PimArray::new(32, 32).unwrap())
            .unwrap();
        check_batched(&plan, 33);
    }

    #[test]
    fn stream_rejects_bad_batches() {
        let l = ConvLayer::square("c", 8, 3, 2, 3).unwrap();
        let plan = MappingAlgorithm::Im2col
            .plan(&l, PimArray::new(32, 32).unwrap())
            .unwrap();
        let weights = gen::random4::<i64>(3, 2, 3, 3, 2);
        let mut stats = RunStats::new();
        let stage = ProgrammedStage::program(&plan, &weights, &mut stats).unwrap();
        assert!(stage.stream_batch(&[]).is_err());
        let wrong = gen::random3::<i64>(3, 8, 8, 1);
        assert!(stage.stream_batch(std::slice::from_ref(&wrong)).is_err());
    }

    #[test]
    fn stream_stats_match_single_run_stats() {
        let l = ConvLayer::square("c", 6, 3, 3, 4).unwrap();
        let plan = MappingAlgorithm::Im2col
            .plan(&l, PimArray::new(16, 8).unwrap())
            .unwrap();
        let weights = gen::random4::<i64>(4, 3, 3, 3, 4);
        let ifm = gen::random3::<i64>(3, 6, 6, 3);
        let mut stats = RunStats::new();
        let stage = ProgrammedStage::program(&plan, &weights, &mut stats).unwrap();
        stage.stream_stats(&pim_arch::energy::EnergyModel::isaac_like(), &mut stats);
        let solo = Engine::new().run(&plan, &ifm, &weights).unwrap();
        assert_eq!(&stats, solo.stats());
    }
}
