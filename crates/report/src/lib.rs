//! Plain-text experiment output — aligned tables, CSV, ASCII charts —
//! plus the workspace's [`json`] subsystem.
//!
//! The experiment binaries in `vw-sdk-bench` regenerate every table and
//! figure of the paper; this crate renders their data. Everything is
//! hand-rolled on purpose — the workspace's dependency policy (DESIGN.md
//! §6) avoids serialization frameworks, so the [`json`] module carries
//! its own parser and serializer, shared by the network-spec loader in
//! `pim-nets`, the `vw-sdk-serve` HTTP daemon and the `vwsdk` CLI.
//!
//! # Example
//!
//! ```
//! use pim_report::table::TextTable;
//!
//! let mut t = TextTable::new(&["layer", "cycles"]);
//! t.add_row(&["conv1", "6216"]);
//! let text = t.render();
//! assert!(text.contains("conv1"));
//! assert!(text.starts_with("layer"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chart;
pub mod json;
pub mod table;

/// Formats a float with the given number of decimals, trimming `-0.00`.
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    let s = format!("{value:.decimals$}");
    if s.starts_with("-0.") && s[1..].parse::<f64>() == Ok(0.0) {
        s[1..].to_string()
    } else {
        s
    }
}

/// Formats a speedup ratio like the paper does (`4.67x`).
pub fn fmt_speedup(ratio: f64) -> String {
    format!("{}x", fmt_f64(ratio, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_f64_trims_negative_zero() {
        assert_eq!(fmt_f64(-0.0001, 2), "0.00");
        assert_eq!(fmt_f64(-0.5, 2), "-0.50");
        assert_eq!(fmt_f64(1.005, 1), "1.0");
    }

    #[test]
    fn fmt_speedup_matches_paper_style() {
        assert_eq!(fmt_speedup(4.6673), "4.67x");
        assert_eq!(fmt_speedup(1.0), "1.00x");
    }
}
