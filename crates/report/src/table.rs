//! Aligned text tables and CSV emission.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (default; good for names).
    #[default]
    Left,
    /// Right-aligned (good for numbers).
    Right,
}

/// A simple aligned text table with a header row.
///
/// # Example
///
/// ```
/// use pim_report::table::{Align, TextTable};
///
/// let mut t = TextTable::new(&["net", "cycles"]);
/// t.align(1, Align::Right);
/// t.add_row(&["VGG-13", "77102"]);
/// t.add_row(&["ResNet-18", "4294"]);
/// let s = t.render();
/// assert!(s.contains("77102"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: AsRef<str>>(header: &[S]) -> Self {
        Self {
            header: header.iter().map(|s| s.as_ref().to_string()).collect(),
            rows: Vec::new(),
            aligns: vec![Align::Left; header.len()],
        }
    }

    /// Sets the alignment of one column (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Appends a data row. Shorter rows are padded with empty cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than the header.
    pub fn add_row<S: AsRef<str>>(&mut self, row: &[S]) -> &mut Self {
        assert!(
            row.len() <= self.header.len(),
            "row has {} cells but table has {} columns",
            row.len(),
            self.header.len()
        );
        let mut cells: Vec<String> = row.iter().map(|s| s.as_ref().to_string()).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders the aligned table, header first, with a separator rule.
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        if i + 1 < cells.len() {
                            for _ in cell.len()..widths[i] {
                                out.push(' ');
                            }
                        }
                    }
                    Align::Right => {
                        for _ in cell.len()..widths[i] {
                            out.push(' ');
                        }
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }

    /// Emits the table as RFC-4180-style CSV (quoting cells that contain
    /// commas, quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let emit = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.header, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(&["a", "value"]);
        t.align(1, Align::Right);
        t.add_row(&["x", "1"]);
        t.add_row(&["long-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned numbers end at the same column.
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.add_row(&["only"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("only"));
    }

    #[test]
    #[should_panic(expected = "row has 3 cells")]
    fn oversized_rows_panic() {
        let mut t = TextTable::new(&["a", "b"]);
        t.add_row(&["1", "2", "3"]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = TextTable::new(&["name", "note"]);
        t.add_row(&["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"a,b\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new(&["h"]);
        t.add_row(&["v"]);
        assert_eq!(t.to_string(), t.render());
    }
}
