//! A self-contained JSON value, parser and serializer.
//!
//! The workspace's dependency policy (DESIGN.md §6) rules out serde, but
//! the planning service speaks JSON over the wire: network specs come
//! in, mapping plans go out. This module is the single JSON
//! implementation the whole tree shares — `pim-nets` deserializes
//! [`NetworkSpec`](https://docs.rs/pim-nets)s through it, `vw-sdk-serve`
//! renders every response with it, and `vwsdk sweep --format json`
//! reuses the same serializer, so machine-readable output is
//! byte-identical no matter which entry point produced it.
//!
//! Design points:
//!
//! * Objects preserve **insertion order** (a `Vec` of pairs, not a hash
//!   map), which makes serialization deterministic — a requirement for
//!   the server's byte-identical-to-the-`Planner` guarantee.
//! * The parser is a recursive-descent parser with a nesting-depth
//!   limit; it reports errors with 1-based line and column. It accepts
//!   exactly RFC 8259 JSON (no comments, no trailing commas).
//! * Numbers are stored as `f64`. Integers up to 2^53 round-trip
//!   exactly and serialize without a fractional part; non-finite floats
//!   cannot be produced by the parser and serialize as `null`.
//!
//! # Example
//!
//! ```
//! use pim_report::json::JsonValue;
//!
//! let value = JsonValue::parse(r#"{"name": "tiny", "layers": [1, 2]}"#)?;
//! assert_eq!(value.get("name").and_then(JsonValue::as_str), Some("tiny"));
//! assert_eq!(value.render(), r#"{"name":"tiny","layers":[1,2]}"#);
//! // parse ∘ render is the identity on values.
//! assert_eq!(JsonValue::parse(&value.render())?, value);
//! # Ok::<(), pim_report::json::JsonError>(())
//! ```

use std::error::Error;
use std::fmt;

/// Maximum nesting depth the parser accepts; deeper documents are
/// rejected instead of overflowing the stack (the server parses
/// untrusted bodies).
const MAX_DEPTH: usize = 128;

/// Error raised while parsing malformed JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// 1-based line of the offending character.
    line: usize,
    /// 1-based column of the offending character.
    column: usize,
}

impl JsonError {
    fn new(message: impl Into<String>, line: usize, column: usize) -> Self {
        Self {
            message: message.into(),
            line,
            column,
        }
    }

    /// 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column number where parsing failed.
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid JSON at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl Error for JsonError {}

/// A JSON document: the value tree of RFC 8259.
///
/// Objects keep their members in insertion order so that serialization
/// is deterministic; see the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object: ordered `(key, value)` members.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with line/column information for malformed
    /// text, trailing garbage, or nesting deeper than 128 levels.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser::new(text);
        parser.skip_whitespace();
        let value = parser.parse_value(0)?;
        parser.skip_whitespace();
        if !parser.at_end() {
            return Err(parser.error("unexpected trailing characters"));
        }
        Ok(value)
    }

    /// Builds an object from ordered `(key, value)` pairs.
    pub fn object<K: Into<String>>(members: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Member lookup on objects; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a `u64`, if this is a non-negative integral number
    /// small enough to be exact.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9007199254740992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The payload as a `usize` (see [`JsonValue::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace). Deterministic: equal values
    /// render to equal bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and newlines, for humans.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_break(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                write_break(out, indent, level);
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_break(out, indent, level + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                write_break(out, indent, level);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

fn write_break(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // The parser can never produce these; a computed NaN/inf has no
        // JSON spelling, so degrade to null rather than emit garbage.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9007199254740992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's shortest round-trip float formatting re-parses exactly.
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn error(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError::new(message, line, column)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {literal:?}")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than 128 levels"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.consume_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.consume_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.consume_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character {:?}", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        // Hashed key tracking keeps duplicate detection linear — a
        // hostile megabyte of keys must not cost quadratic comparisons.
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected a string key"));
            }
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            if !seen.insert(key.clone()) {
                // First-wins or last-wins would silently drop a value
                // the client meant; with validating consumers above us,
                // rejection is the only honest answer.
                return Err(self.error(format!("duplicate object key {key:?}")));
            }
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.parse_unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one whole UTF-8 scalar (input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("slice on char boundary"),
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.error("invalid \\u escape: expected 4 hex digits")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn parse_unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.parse_hex4()?;
        if (0xd800..0xdc00).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.parse_hex4()?;
                if !(0xdc00..0xe000).contains(&second) {
                    return Err(self.error("invalid low surrogate in \\u pair"));
                }
                let combined = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                return char::from_u32(combined)
                    .ok_or_else(|| self.error("invalid surrogate pair"));
            }
            return Err(self.error("unpaired high surrogate in \\u escape"));
        }
        if (0xdc00..0xe000).contains(&first) {
            return Err(self.error("unpaired low surrogate in \\u escape"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid \\u code point"))
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("malformed number: digits must follow '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("malformed number: empty exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error(format!("number {text:?} out of range")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> JsonValue {
        JsonValue::parse(text).unwrap()
    }

    #[test]
    fn scalars_parse_and_render() {
        assert_eq!(parse("null"), JsonValue::Null);
        assert_eq!(parse("true"), JsonValue::Bool(true));
        assert_eq!(parse("false").render(), "false");
        assert_eq!(parse("42"), JsonValue::Number(42.0));
        assert_eq!(parse("-3.5").render(), "-3.5");
        assert_eq!(parse("1e3").render(), "1000");
        assert_eq!(parse("\"hi\"").as_str(), Some("hi"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(JsonValue::from(4294u64).render(), "4294");
        assert_eq!(JsonValue::from(0usize).render(), "0");
        assert_eq!(JsonValue::Number(-7.0).render(), "-7");
        assert_eq!(JsonValue::Number(4.67).render(), "4.67");
    }

    #[test]
    fn nonfinite_numbers_render_as_null() {
        assert_eq!(JsonValue::Number(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).render(), "null");
    }

    #[test]
    fn objects_preserve_member_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
        assert_eq!(v.get("a"), Some(&JsonValue::Number(2.0)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn arrays_and_nesting_round_trip() {
        let text = r#"{"layers":[{"k":[3,3]},{"k":[5,5]}],"deep":[[[1]]]}"#;
        let v = parse(text);
        assert_eq!(v.render(), text);
        assert_eq!(JsonValue::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nd\teé😀""#);
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\teé😀"));
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
        let control = JsonValue::String("\u{01}".to_string());
        assert_eq!(control.render(), "\"\\u0001\"");
        assert_eq!(JsonValue::parse(&control.render()).unwrap(), control);
    }

    #[test]
    fn malformed_documents_report_positions() {
        let err = JsonValue::parse("{\"a\": }").unwrap_err();
        assert_eq!((err.line(), err.column()), (1, 7));
        let err = JsonValue::parse("[1,\n 2,]").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse("[1 2]").is_err());
        assert!(JsonValue::parse("{'a': 1}").is_err());
        assert!(JsonValue::parse("01").is_err());
        assert!(JsonValue::parse("1.").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("\"bad \\q escape\"").is_err());
        assert!(JsonValue::parse("\"\\ud800 unpaired\"").is_err());
        assert!(JsonValue::parse("nulL").is_err());
    }

    #[test]
    fn duplicate_object_keys_are_rejected() {
        let err = JsonValue::parse(r#"{"a": 1, "b": 2, "a": 3}"#).unwrap_err();
        assert!(
            err.to_string().contains("duplicate object key \"a\""),
            "{err}"
        );
        assert!(JsonValue::parse(r#"{"a": {"x": 1, "x": 2}}"#).is_err());
        // Equal keys in *different* objects stay fine.
        assert!(JsonValue::parse(r#"[{"a": 1}, {"a": 2}]"#).is_ok());
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"));
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn numeric_accessors_guard_exactness() {
        assert_eq!(parse("7").as_u64(), Some(7));
        assert_eq!(parse("7").as_usize(), Some(7));
        assert_eq!(parse("-1").as_u64(), None);
        assert_eq!(parse("1.5").as_u64(), None);
        assert_eq!(parse("true").as_f64(), None);
    }

    #[test]
    fn builders_compose_documents() {
        let v = JsonValue::object([
            ("name", JsonValue::from("tiny")),
            ("layers", JsonValue::array([1usize.into(), 2usize.into()])),
            ("ok", true.into()),
        ]);
        assert_eq!(v.render(), r#"{"name":"tiny","layers":[1,2],"ok":true}"#);
    }

    #[test]
    fn pretty_rendering_is_indented() {
        let v = parse(r#"{"a":[1,2],"b":{}}"#);
        let pretty = v.render_pretty();
        assert!(pretty.contains("{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}"));
    }
}
