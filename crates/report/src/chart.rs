//! ASCII bar charts for figure-style experiment output.

use crate::fmt_f64;

/// A horizontal ASCII bar chart: one labelled bar per entry.
///
/// # Example
///
/// ```
/// use pim_report::chart::BarChart;
///
/// let mut c = BarChart::new("speedup vs im2col");
/// c.add("SDK", 2.77);
/// c.add("VW-SDK", 4.67);
/// let s = c.render(40);
/// assert!(s.contains("VW-SDK"));
/// assert!(s.contains("#"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BarChart {
    title: String,
    entries: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates an empty chart with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            entries: Vec::new(),
        }
    }

    /// Appends one labelled bar.
    pub fn add(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.entries.push((label.into(), value));
        self
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders with bars scaled so the maximum value spans `width`
    /// characters.
    pub fn render(&self, width: usize) -> String {
        let mut out = format!("{}\n", self.title);
        let label_w = self.entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self
            .entries
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for (label, value) in &self.entries {
            let bar_len = ((value / max) * width as f64).round().max(0.0) as usize;
            out.push_str(&format!(
                "  {label:<label_w$} |{} {}\n",
                "#".repeat(bar_len),
                fmt_f64(*value, 2)
            ));
        }
        out
    }
}

/// A grouped bar chart: one row per category, one value per series — the
/// shape of the paper's Fig. 8 and Fig. 9 panels.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedBarChart {
    title: String,
    series: Vec<String>,
    groups: Vec<(String, Vec<f64>)>,
}

impl GroupedBarChart {
    /// Creates a chart with the given series names (e.g. the algorithms).
    pub fn new<S: AsRef<str>>(title: impl Into<String>, series: &[S]) -> Self {
        Self {
            title: title.into(),
            series: series.iter().map(|s| s.as_ref().to_string()).collect(),
            groups: Vec::new(),
        }
    }

    /// Appends one category (e.g. a layer) with one value per series.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the series count.
    pub fn add_group(&mut self, label: impl Into<String>, values: &[f64]) -> &mut Self {
        assert_eq!(
            values.len(),
            self.series.len(),
            "group must provide one value per series"
        );
        self.groups.push((label.into(), values.to_vec()));
        self
    }

    /// Renders all groups, bars scaled to the global maximum.
    pub fn render(&self, width: usize) -> String {
        let mut out = format!("{}\n", self.title);
        let label_w = self
            .groups
            .iter()
            .map(|(l, _)| l.len())
            .chain(self.series.iter().map(String::len))
            .max()
            .unwrap_or(0);
        let max = self
            .groups
            .iter()
            .flat_map(|(_, vs)| vs.iter().copied())
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for (label, values) in &self.groups {
            out.push_str(&format!("{label}\n"));
            for (name, value) in self.series.iter().zip(values) {
                let bar_len = ((value / max) * width as f64).round().max(0.0) as usize;
                out.push_str(&format!(
                    "  {name:<label_w$} |{} {}\n",
                    "#".repeat(bar_len),
                    fmt_f64(*value, 2)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let mut c = BarChart::new("t");
        c.add("half", 1.0);
        c.add("full", 2.0);
        let s = c.render(10);
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.chars().filter(|&ch| ch == '#').count();
        assert_eq!(count(lines[1]), 5);
        assert_eq!(count(lines[2]), 10);
    }

    #[test]
    fn empty_chart_renders_title_only() {
        let c = BarChart::new("nothing");
        assert_eq!(c.render(10), "nothing\n");
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn grouped_chart_lists_all_series_per_group() {
        let mut g = GroupedBarChart::new("fig", &["im2col", "VW-SDK"]);
        g.add_group("layer1", &[1.0, 7.9]);
        g.add_group("layer2", &[1.0, 4.0]);
        let s = g.render(20);
        assert_eq!(s.matches("im2col").count(), 2);
        assert_eq!(s.matches("VW-SDK").count(), 2);
        assert!(s.contains("7.90"));
    }

    #[test]
    #[should_panic(expected = "one value per series")]
    fn grouped_chart_validates_value_count() {
        let mut g = GroupedBarChart::new("fig", &["a", "b"]);
        g.add_group("x", &[1.0]);
    }
}
