//! Property-based tests for the reference convolution kernels.
//!
//! The central invariant: the two independent convolution implementations
//! (direct and im2col+GEMM) agree exactly on integer tensors for arbitrary
//! shapes, strides, paddings and dilations. `pim-sim` later leans on this
//! pair as its ground truth, so the pair itself must be trustworthy.

use pim_tensor::{conv, gen, Conv2dParams};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ConvCase {
    ic: usize,
    oc: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    params: Conv2dParams,
    seed: u64,
}

fn conv_case() -> impl Strategy<Value = ConvCase> {
    (
        1usize..4,
        1usize..5,
        1usize..4,
        1usize..4,
        0usize..3,
        1usize..3,
        1usize..3,
        any::<u64>(),
    )
        .prop_flat_map(|(ic, oc, kh, kw, pad, stride, dilation, seed)| {
            let eff_h = (kh - 1) * dilation + 1;
            let eff_w = (kw - 1) * dilation + 1;
            // Input must be large enough for the dilated kernel after padding.
            let min_h = eff_h.saturating_sub(2 * pad).max(1);
            let min_w = eff_w.saturating_sub(2 * pad).max(1);
            (
                Just(ic),
                Just(oc),
                min_h..min_h + 8,
                min_w..min_w + 8,
                Just(kh),
                Just(kw),
                Just(pad),
                Just(stride),
                Just(dilation),
                Just(seed),
            )
        })
        .prop_map(
            |(ic, oc, h, w, kh, kw, pad, stride, dilation, seed)| ConvCase {
                ic,
                oc,
                h,
                w,
                kh,
                kw,
                params: Conv2dParams {
                    stride_h: stride,
                    stride_w: stride,
                    pad_h: pad,
                    pad_w: pad,
                    dilation_h: dilation,
                    dilation_w: dilation,
                },
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn im2col_equals_direct(case in conv_case()) {
        let ifm = gen::random3::<i64>(case.ic, case.h, case.w, case.seed);
        let wts = gen::random4::<i64>(case.oc, case.ic, case.kh, case.kw, case.seed ^ 0xABCD);
        let a = conv::conv2d_direct(&ifm, &wts, case.params);
        let b = conv::conv2d_im2col(&ifm, &wts, case.params);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {} // both reject the same shapes
            (x, y) => prop_assert!(false, "implementations disagree on validity: {:?} vs {:?}", x.is_ok(), y.is_ok()),
        }
    }

    #[test]
    fn convolution_is_linear_in_the_input(
        case in conv_case(),
    ) {
        // conv(a + b, w) == conv(a, w) + conv(b, w), exact in i64.
        let a = gen::random3::<i64>(case.ic, case.h, case.w, case.seed);
        let b = gen::random3::<i64>(case.ic, case.h, case.w, case.seed.wrapping_add(1));
        let wts = gen::random4::<i64>(case.oc, case.ic, case.kh, case.kw, case.seed ^ 0x77);
        let Ok(ca) = conv::conv2d_direct(&a, &wts, case.params) else { return Ok(()); };
        let cb = conv::conv2d_direct(&b, &wts, case.params).unwrap();

        let mut sum_in = pim_tensor::Tensor3::<i64>::zeros(case.ic, case.h, case.w);
        for c in 0..case.ic {
            for y in 0..case.h {
                for x in 0..case.w {
                    sum_in.set(c, y, x, a.get(c, y, x) + b.get(c, y, x));
                }
            }
        }
        let c_sum = conv::conv2d_direct(&sum_in, &wts, case.params).unwrap();
        for ch in 0..ca.channels() {
            for y in 0..ca.height() {
                for x in 0..ca.width() {
                    prop_assert_eq!(c_sum.get(ch, y, x), ca.get(ch, y, x) + cb.get(ch, y, x));
                }
            }
        }
    }

    #[test]
    fn output_dims_match_produced_tensor(case in conv_case()) {
        let ifm = gen::random3::<i64>(case.ic, case.h, case.w, case.seed);
        let wts = gen::random4::<i64>(case.oc, case.ic, case.kh, case.kw, case.seed);
        if let Ok(out) = conv::conv2d_direct(&ifm, &wts, case.params) {
            let (oh, ow) = case
                .params
                .output_dims(case.h, case.w, case.kh, case.kw)
                .unwrap();
            prop_assert_eq!(out.dims(), (case.oc, oh, ow));
        }
    }

    #[test]
    fn zero_weights_give_zero_output(case in conv_case()) {
        let ifm = gen::random3::<i64>(case.ic, case.h, case.w, case.seed);
        let wts = pim_tensor::Tensor4::<i64>::zeros(case.oc, case.ic, case.kh, case.kw);
        if let Ok(out) = conv::conv2d_direct(&ifm, &wts, case.params) {
            prop_assert!(out.as_slice().iter().all(|&v| v == 0));
        }
    }
}
