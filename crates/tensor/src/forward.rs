//! The network-scale reference forward pass.
//!
//! `pim-sim` proves a single mapping correct by comparing one simulated
//! layer against [`crate::conv2d_direct`]. This module is the
//! network-scale analogue: it streams one input feature map through
//! *every* stage of a [`Network`] — convolution, then the stage's
//! digital [`InterOp`]s — entirely in reference arithmetic. The
//! functional simulator's `NetworkExecutor` is verified bit-exact
//! against [`forward`] in integer mode.
//!
//! # Execution modes
//!
//! Deep integer networks grow activation magnitudes multiplicatively
//! (each convolution multiplies by roughly `IC·K²·|w|`), which would
//! overflow any fixed-width integer after a few stages. [`ExecMode`]
//! picks the policy:
//!
//! * [`ExecMode::Exact`] — no inter-stage rescaling. Every value is the
//!   mathematically exact convolution chain; use `i128` tensors for
//!   headroom (the executable zoo networks stay within `i128` range).
//! * [`ExecMode::Quantized`] — after each stage's operators, apply the
//!   int8-style [`Scalar::requant8`] squash (divide by 2⁷, saturate to
//!   `[-127, 127]`). Values stay bounded at any depth, and because the
//!   executor applies the identical function, integer comparisons remain
//!   exact equalities.

use crate::ops::{avg_pool2d, max_pool2d, relu, requant8};
use crate::{
    conv2d_direct, conv2d_grouped, Conv2dParams, Result, Scalar, ShapeError, Tensor3, Tensor4,
};
use pim_nets::{ConvLayer, InterOp, Network};

/// Inter-stage value policy of a network execution; see the
/// [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Mathematically exact: no inter-stage rescaling.
    Exact,
    /// Int8-style requantization after every stage (the default — safe
    /// at any network depth).
    #[default]
    Quantized,
}

impl ExecMode {
    /// The mode's wire/CLI label: `"exact"` or `"quantized"`.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Exact => "exact",
            Self::Quantized => "quantized",
        }
    }

    /// Parses a label (case-insensitive).
    pub fn by_label(label: &str) -> Option<Self> {
        match label.to_ascii_lowercase().as_str() {
            "exact" => Some(Self::Exact),
            "quantized" | "quant" | "int8" => Some(Self::Quantized),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The convolution parameter block of a layer descriptor — the single
/// place layer hyper-parameters turn into [`Conv2dParams`], shared by
/// the reference kernels and (via `pim_sim::layer_params`) the
/// simulator.
pub fn conv_params(layer: &ConvLayer) -> Conv2dParams {
    Conv2dParams {
        stride_h: layer.stride(),
        stride_w: layer.stride(),
        pad_h: layer.padding(),
        pad_w: layer.padding(),
        dilation_h: layer.dilation(),
        dilation_w: layer.dilation(),
    }
}

/// Applies one digital operator to a feature map.
///
/// # Errors
///
/// Returns [`ShapeError`] if a pooling kernel does not fit.
pub fn apply_op<T: Scalar>(op: InterOp, input: &Tensor3<T>) -> Result<Tensor3<T>> {
    match op {
        InterOp::Identity => Ok(input.clone()),
        InterOp::Relu => Ok(relu(input)),
        InterOp::MaxPool { kernel, stride } => max_pool2d(input, kernel, stride),
        InterOp::AvgPool { kernel, stride } => avg_pool2d(input, kernel, stride),
    }
}

/// Applies an operator sequence in order.
///
/// # Errors
///
/// Returns [`ShapeError`] from the first operator that cannot apply.
pub fn apply_ops<T: Scalar>(ops: &[InterOp], input: Tensor3<T>) -> Result<Tensor3<T>> {
    let mut current = input;
    for &op in ops {
        current = apply_op(op, &current)?;
    }
    Ok(current)
}

/// Runs the whole-network reference forward pass; see the
/// [module docs](self).
///
/// `weights[i]` is layer `i`'s weight bank (`OC × IC/groups × Kh × Kw`).
///
/// # Errors
///
/// Returns [`ShapeError`] if the weight list length, any tensor shape,
/// or the stage chaining is inconsistent with the network.
pub fn forward<T: Scalar>(
    network: &Network,
    ifm: &Tensor3<T>,
    weights: &[Tensor4<T>],
    mode: ExecMode,
) -> Result<Tensor3<T>> {
    if weights.len() != network.len() {
        return Err(ShapeError::new(format!(
            "network {:?} has {} layers but {} weight banks were given",
            network.name(),
            network.len(),
            weights.len()
        )));
    }
    network
        .check_chain()
        .map_err(|e| ShapeError::new(e.to_string()))?;
    let mut current = ifm.clone();
    for (i, layer) in network.layers().iter().enumerate() {
        let params = conv_params(layer);
        let conv = if layer.groups() > 1 {
            conv2d_grouped(&current, &weights[i], params, layer.groups())?
        } else {
            conv2d_direct(&current, &weights[i], params)?
        };
        current = apply_ops(network.ops_after(i), conv)?;
        if mode == ExecMode::Quantized {
            current = requant8(&current);
        }
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use pim_nets::zoo;

    #[test]
    fn mode_labels_round_trip() {
        assert_eq!(ExecMode::by_label("exact"), Some(ExecMode::Exact));
        assert_eq!(ExecMode::by_label("QUANTIZED"), Some(ExecMode::Quantized));
        assert_eq!(ExecMode::by_label("fuzzy"), None);
        assert_eq!(ExecMode::default(), ExecMode::Quantized);
        assert_eq!(ExecMode::Exact.to_string(), "exact");
    }

    #[test]
    fn forward_on_tiny_matches_manual_chain() {
        let net = zoo::tiny();
        let ifm = gen::random3::<i64>(2, 8, 8, 1);
        let weights = vec![
            gen::random4::<i64>(4, 2, 3, 3, 2),
            gen::random4::<i64>(8, 4, 3, 3, 3),
        ];
        let out = forward(&net, &ifm, &weights, ExecMode::Exact).unwrap();
        // Manual: conv1 -> relu -> conv2.
        let c1 = conv2d_direct(&ifm, &weights[0], conv_params(&net.layers()[0])).unwrap();
        let r1 = relu(&c1);
        let c2 = conv2d_direct(&r1, &weights[1], conv_params(&net.layers()[1])).unwrap();
        assert_eq!(out, c2);
    }

    #[test]
    fn quantized_mode_bounds_activations() {
        let net = zoo::vgg13_sim();
        let l0 = &net.layers()[0];
        let ifm = gen::random3::<i64>(l0.in_channels(), l0.input_h(), l0.input_w(), 7);
        let weights: Vec<_> = net
            .layers()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                gen::random4::<i64>(
                    l.out_channels(),
                    l.in_channels_per_group(),
                    l.kernel_h(),
                    l.kernel_w(),
                    100 + i as u64,
                )
            })
            .collect();
        let out = forward(&net, &ifm, &weights, ExecMode::Quantized).unwrap();
        assert!(out.as_slice().iter().all(|&v| (-127..=127).contains(&v)));
        // Deterministic: same inputs, same bytes.
        let again = forward(&net, &ifm, &weights, ExecMode::Quantized).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn forward_validates_weight_count_and_chaining() {
        let net = zoo::tiny();
        let ifm = gen::random3::<i64>(2, 8, 8, 1);
        assert!(forward(&net, &ifm, &[], ExecMode::Exact).is_err());
        // Paper-form VGG-13 does not chain spatially.
        let vgg = zoo::vgg13();
        let w: Vec<_> = vgg
            .layers()
            .iter()
            .map(|l| {
                Tensor4::<i64>::zeros(
                    l.out_channels(),
                    l.in_channels(),
                    l.kernel_h(),
                    l.kernel_w(),
                )
            })
            .collect();
        let big = gen::random3::<i64>(3, 224, 224, 1);
        assert!(forward(&vgg, &big, &w, ExecMode::Exact).is_err());
    }

    #[test]
    fn grouped_layers_flow_through_forward() {
        use pim_nets::{ConvLayer, InterOp, Network};
        let dw = ConvLayer::builder("dw")
            .input(8, 8)
            .kernel(3, 3)
            .channels(4, 4)
            .groups(4)
            .build()
            .unwrap();
        let pw = ConvLayer::square("pw", 6, 1, 4, 8).unwrap();
        let net = Network::from_stages("dw-pw", vec![(dw, vec![InterOp::Relu]), (pw, Vec::new())]);
        let ifm = gen::random3::<i64>(4, 8, 8, 5);
        let weights = vec![
            gen::random4::<i64>(4, 1, 3, 3, 6),
            gen::random4::<i64>(8, 4, 1, 1, 7),
        ];
        let out = forward(&net, &ifm, &weights, ExecMode::Exact).unwrap();
        assert_eq!(out.dims(), (8, 6, 6));
    }
}
