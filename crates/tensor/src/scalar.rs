//! The numeric element trait shared by all tensors in this crate.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Element type usable in tensors and convolution kernels.
///
/// This is deliberately small: the reference kernels only need a ring with a
/// zero element, plus the three digital-periphery primitives the network
/// forward pass uses (ordering for max pooling, exact division by a window
/// size for average pooling, and the int8-style requantization of the
/// simulator's quantized mode). Implementations are provided for `f32`,
/// `f64`, `i32`, `i64` and `i128`. Integer instantiations give *exact*
/// arithmetic, which the cross-checking tests in `pim-sim` rely on; float
/// instantiations model the analog datapath.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + Sum
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;

    /// Converts a small unsigned integer into the scalar domain.
    ///
    /// Used by the deterministic generators in [`crate::gen`]; values stay
    /// far below the integer mantissa limit of `f32`, so the conversion is
    /// exact for every provided implementation.
    fn from_u16(value: u16) -> Self;

    /// The larger of `self` and `other` (the max-pooling / ReLU
    /// primitive). Floats use IEEE `max`; no NaN ever enters the
    /// simulator's tensors.
    fn max_with(self, other: Self) -> Self;

    /// Division by a small positive count (the average-pooling
    /// primitive): truncating toward zero for integers, exact for
    /// floats. Both the reference forward pass and the simulated
    /// digital periphery use this same definition, so integer averages
    /// stay bit-identical.
    fn div_count(self, count: u16) -> Self;

    /// Int8-style requantization of an accumulated activation: divide
    /// by 2⁷ (truncating for integers) and saturate into `[-127, 127]`.
    /// Applied between network stages in the simulator's quantized
    /// mode, it bounds value growth so arbitrarily deep integer
    /// executions stay exact (no overflow) while remaining a pure,
    /// domain-independent function — the executor and the reference
    /// forward pass apply it identically.
    fn requant8(self) -> Self;
}

macro_rules! impl_scalar_int {
    ($($t:ty),*) => {
        $(
            impl Scalar for $t {
                const ZERO: Self = 0;
                const ONE: Self = 1;

                fn from_u16(value: u16) -> Self {
                    value as $t
                }

                fn max_with(self, other: Self) -> Self {
                    Ord::max(self, other)
                }

                fn div_count(self, count: u16) -> Self {
                    self / count as $t
                }

                fn requant8(self) -> Self {
                    (self / 128).clamp(-127, 127)
                }
            }
        )*
    };
}

macro_rules! impl_scalar_float {
    ($($t:ty),*) => {
        $(
            impl Scalar for $t {
                const ZERO: Self = 0.0;
                const ONE: Self = 1.0;

                fn from_u16(value: u16) -> Self {
                    value as $t
                }

                fn max_with(self, other: Self) -> Self {
                    self.max(other)
                }

                fn div_count(self, count: u16) -> Self {
                    self / count as $t
                }

                fn requant8(self) -> Self {
                    (self / 128.0).clamp(-127.0, 127.0)
                }
            }
        )*
    };
}

impl_scalar_int!(i32, i64, i128);
impl_scalar_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Scalar>(values: &[T]) -> T {
        values.iter().copied().sum()
    }

    #[test]
    fn zero_and_one_are_identities() {
        assert_eq!(i32::ONE, 1);
        assert_eq!(f64::ONE * f64::ONE, 1.0);
        assert_eq!(i128::ZERO, 0);
    }

    #[test]
    fn from_u16_is_exact_for_floats() {
        assert_eq!(f32::from_u16(u16::MAX), 65535.0);
        assert_eq!(f64::from_u16(12345), 12345.0);
    }

    #[test]
    fn sum_works_through_the_trait() {
        let xs = [1i64, 2, 3, 4];
        assert_eq!(generic_sum(&xs), 10);
        let ys = [0.5f32, 0.25, 0.25];
        assert_eq!(generic_sum(&ys), 1.0);
    }

    #[test]
    fn negation_is_available() {
        fn negate<T: Scalar>(x: T) -> T {
            -x
        }
        assert_eq!(negate(5i32), -5);
        assert_eq!(negate(2.0f64), -2.0);
    }

    #[test]
    fn max_with_orders_both_domains() {
        assert_eq!(7i64.max_with(-3), 7);
        assert_eq!((-7i32).max_with(-3), -3);
        assert_eq!(1.5f64.max_with(2.5), 2.5);
    }

    #[test]
    fn div_count_truncates_integers_toward_zero() {
        assert_eq!(7i32.div_count(4), 1);
        assert_eq!((-7i32).div_count(4), -1);
        assert_eq!(7.0f64.div_count(4), 1.75);
    }

    #[test]
    fn requant8_scales_and_saturates() {
        assert_eq!(1000i64.requant8(), 7);
        assert_eq!((-1000i64).requant8(), -7);
        assert_eq!(1_000_000i64.requant8(), 127);
        assert_eq!((-1_000_000i64).requant8(), -127);
        assert_eq!(0i128.requant8(), 0);
        assert_eq!(256.0f64.requant8(), 2.0);
        assert_eq!(1e9f32.requant8(), 127.0);
    }
}
