//! The numeric element trait shared by all tensors in this crate.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Element type usable in tensors and convolution kernels.
///
/// This is deliberately small: the reference kernels only need a ring with a
/// zero element. Implementations are provided for `f32`, `f64`, `i32`, `i64`
/// and `i128`. Integer instantiations give *exact* arithmetic, which the
/// cross-checking tests in `pim-sim` rely on; float instantiations model the
/// analog datapath.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + Sum
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;

    /// Converts a small unsigned integer into the scalar domain.
    ///
    /// Used by the deterministic generators in [`crate::gen`]; values stay
    /// far below the integer mantissa limit of `f32`, so the conversion is
    /// exact for every provided implementation.
    fn from_u16(value: u16) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {
        $(
            impl Scalar for $t {
                const ZERO: Self = 0 as $t;
                const ONE: Self = 1 as $t;

                fn from_u16(value: u16) -> Self {
                    value as $t
                }
            }
        )*
    };
}

impl_scalar!(f32, f64, i32, i64, i128);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Scalar>(values: &[T]) -> T {
        values.iter().copied().sum()
    }

    #[test]
    fn zero_and_one_are_identities() {
        assert_eq!(i32::ONE, 1);
        assert_eq!(f64::ONE * f64::ONE, 1.0);
        assert_eq!(i128::ZERO, 0);
    }

    #[test]
    fn from_u16_is_exact_for_floats() {
        assert_eq!(f32::from_u16(u16::MAX), 65535.0);
        assert_eq!(f64::from_u16(12345), 12345.0);
    }

    #[test]
    fn sum_works_through_the_trait() {
        let xs = [1i64, 2, 3, 4];
        assert_eq!(generic_sum(&xs), 10);
        let ys = [0.5f32, 0.25, 0.25];
        assert_eq!(generic_sum(&ys), 1.0);
    }

    #[test]
    fn negation_is_available() {
        fn negate<T: Scalar>(x: T) -> T {
            -x
        }
        assert_eq!(negate(5i32), -5);
        assert_eq!(negate(2.0f64), -2.0);
    }
}
