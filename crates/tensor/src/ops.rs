//! Digital inter-stage operators on feature maps.
//!
//! Convolutions run on the analog crossbar; everything between two
//! convolutions — activations, pooling, requantization — runs in the
//! digital periphery. These are the reference implementations of those
//! operators, shared (via [`mod@crate::forward`]) by the network reference
//! pass and, in `pim-sim`, by the network executor, so both sides of a
//! bit-exact comparison apply literally the same arithmetic.

use crate::{Result, Scalar, ShapeError, Tensor3};

/// Element-wise rectified linear unit: `max(x, 0)`.
pub fn relu<T: Scalar>(input: &Tensor3<T>) -> Tensor3<T> {
    let (c, h, w) = input.dims();
    let data = input
        .as_slice()
        .iter()
        .map(|&v| v.max_with(T::ZERO))
        .collect();
    Tensor3::from_vec(c, h, w, data).expect("relu preserves the element count")
}

/// Element-wise int8-style requantization (see [`Scalar::requant8`]):
/// divide by 2⁷ and saturate into `[-127, 127]`. The quantized network
/// execution mode applies this between stages to bound value growth.
pub fn requant8<T: Scalar>(input: &Tensor3<T>) -> Tensor3<T> {
    let (c, h, w) = input.dims();
    let data = input.as_slice().iter().map(|&v| v.requant8()).collect();
    Tensor3::from_vec(c, h, w, data).expect("requant8 preserves the element count")
}

/// Pooling geometry comes from the one authoritative definition,
/// [`pim_nets::InterOp::output_dims`] — the same formula
/// `Network::check_chain` validates with — so chain validation and
/// execution cannot drift apart.
fn check_pool(op: pim_nets::InterOp, h: usize, w: usize) -> Result<(usize, usize)> {
    op.output_dims(h, w)
        .map_err(|e| ShapeError::new(e.to_string()))
}

/// Max pooling over square `kernel` windows at the given `stride`,
/// per channel.
///
/// # Errors
///
/// Returns [`ShapeError`] if the kernel or stride is zero, or the
/// kernel exceeds the input.
pub fn max_pool2d<T: Scalar>(
    input: &Tensor3<T>,
    kernel: usize,
    stride: usize,
) -> Result<Tensor3<T>> {
    let (c, h, w) = input.dims();
    let (oh, ow) = check_pool(pim_nets::InterOp::MaxPool { kernel, stride }, h, w)?;
    let mut out = Tensor3::zeros(c, oh, ow);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = input.get(ch, oy * stride, ox * stride);
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        best = best.max_with(input.get(ch, oy * stride + ky, ox * stride + kx));
                    }
                }
                out.set(ch, oy, ox, best);
            }
        }
    }
    Ok(out)
}

/// Average pooling over square `kernel` windows at the given `stride`,
/// per channel. Integer means truncate toward zero (the digital
/// periphery's fixed-point divide); float means are exact.
///
/// # Errors
///
/// Returns [`ShapeError`] under the same conditions as
/// [`max_pool2d`], plus a kernel too large for the `u16` divisor.
pub fn avg_pool2d<T: Scalar>(
    input: &Tensor3<T>,
    kernel: usize,
    stride: usize,
) -> Result<Tensor3<T>> {
    let (c, h, w) = input.dims();
    let (oh, ow) = check_pool(pim_nets::InterOp::AvgPool { kernel, stride }, h, w)?;
    let count = u16::try_from(kernel * kernel)
        .map_err(|_| ShapeError::new(format!("pooling window {kernel}x{kernel} is too large")))?;
    let mut out = Tensor3::zeros(c, oh, ow);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = T::ZERO;
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        acc += input.get(ch, oy * stride + ky, ox * stride + kx);
                    }
                }
                out.set(ch, oy, ox, acc.div_count(count));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_zeroes_negatives_only() {
        let t = Tensor3::from_vec(1, 2, 2, vec![-3, 0, 4, -1]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0, 0, 4, 0]);
        let f = Tensor3::from_vec(1, 1, 2, vec![-0.5f64, 2.5]).unwrap();
        assert_eq!(relu(&f).as_slice(), &[0.0, 2.5]);
    }

    #[test]
    fn max_pool_takes_window_maxima() {
        let t = Tensor3::from_vec(1, 4, 4, (0..16).collect()).unwrap();
        let p = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(p.dims(), (1, 2, 2));
        assert_eq!(p.as_slice(), &[5, 7, 13, 15]);
        // Overlapping windows (stride < kernel).
        let o = max_pool2d(&t, 2, 1).unwrap();
        assert_eq!(o.dims(), (1, 3, 3));
        assert_eq!(o.get(0, 0, 0), 5);
    }

    #[test]
    fn max_pool_handles_negative_windows() {
        let t = Tensor3::from_vec(1, 2, 2, vec![-8, -3, -5, -9]).unwrap();
        assert_eq!(max_pool2d(&t, 2, 2).unwrap().as_slice(), &[-3]);
    }

    #[test]
    fn avg_pool_truncates_integer_means() {
        let t = Tensor3::from_vec(1, 2, 2, vec![1, 2, 3, 5]).unwrap();
        // (1+2+3+5)/4 = 11/4 -> 2 (truncating).
        assert_eq!(avg_pool2d(&t, 2, 2).unwrap().as_slice(), &[2]);
        let n = Tensor3::from_vec(1, 2, 2, vec![-1, -2, -3, -5]).unwrap();
        assert_eq!(avg_pool2d(&n, 2, 2).unwrap().as_slice(), &[-2]);
        let f = Tensor3::from_vec(1, 2, 2, vec![1.0f64, 2.0, 3.0, 5.0]).unwrap();
        assert_eq!(avg_pool2d(&f, 2, 2).unwrap().as_slice(), &[2.75]);
    }

    #[test]
    fn pooling_is_per_channel() {
        let t = Tensor3::from_vec(2, 2, 2, vec![1, 2, 3, 4, 10, 20, 30, 40]).unwrap();
        let p = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(p.as_slice(), &[4, 40]);
    }

    #[test]
    fn degenerate_pools_are_rejected() {
        let t = Tensor3::<i32>::zeros(1, 3, 3);
        assert!(max_pool2d(&t, 0, 1).is_err());
        assert!(max_pool2d(&t, 2, 0).is_err());
        assert!(avg_pool2d(&t, 4, 1).is_err());
    }

    #[test]
    fn requant8_saturates_tensors() {
        let t = Tensor3::from_vec(1, 1, 3, vec![100_000i64, -300, 64]).unwrap();
        assert_eq!(requant8(&t).as_slice(), &[127, -2, 0]);
    }
}
