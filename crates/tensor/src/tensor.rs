//! Minimal row-major dense tensor types.
//!
//! The crate intentionally avoids a general N-dimensional array: the
//! reproduction only ever needs a matrix ([`Tensor2`]), a `C×H×W` feature
//! map ([`Tensor3`]) and an `OC×IC×KH×KW` weight bank ([`Tensor4`]). Fixed
//! arities keep indexing explicit and make shape errors impossible to
//! express, not merely checked.

use crate::{Result, Scalar, ShapeError};

/// A dense row-major matrix with `rows × cols` elements.
///
/// # Example
///
/// ```
/// use pim_tensor::Tensor2;
///
/// let mut m: Tensor2<i32> = Tensor2::zeros(2, 3);
/// m.set(1, 2, 7);
/// assert_eq!(m.get(1, 2), 7);
/// assert_eq!(m.dims(), (2, 3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor2<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Tensor2<T> {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Creates a matrix from a row-major element vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "Tensor2 expects {rows}x{cols}={} elements, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.rows && col < self.cols, "Tensor2 index OOB");
        self.data[row * self.cols + col]
    }

    /// Writes the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows && col < self.cols, "Tensor2 index OOB");
        self.data[row * self.cols + col] = value;
    }

    /// Adds `value` to the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn add_assign_at(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows && col < self.cols, "Tensor2 index OOB");
        self.data[row * self.cols + col] += value;
    }

    /// Immutable view of the backing row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// One full row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "Tensor2 row OOB");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// One full row as a mutable slice (the blocked kernels in
    /// [`crate::matmul`] accumulate into rows without per-element
    /// bounds checks).
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row_mut(&mut self, row: usize) -> &mut [T] {
        assert!(row < self.rows, "Tensor2 row OOB");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Resets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(T::ZERO);
    }

    /// Consumes the matrix, returning the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

/// A dense `channels × height × width` tensor (a feature map).
///
/// # Example
///
/// ```
/// use pim_tensor::Tensor3;
///
/// let mut fm: Tensor3<i64> = Tensor3::zeros(2, 4, 4);
/// fm.set(1, 3, 0, -5);
/// assert_eq!(fm.get(1, 3, 0), -5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3<T> {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<T>,
}

impl<T: Scalar> Tensor3<T> {
    /// Creates a zero-filled `channels × height × width` tensor.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
            data: vec![T::ZERO; channels * height * width],
        }
    }

    /// Creates a tensor from a `C`-major, then row-major element vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the element count does not match.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != channels * height * width {
            return Err(ShapeError::new(format!(
                "Tensor3 expects {channels}x{height}x{width}={} elements, got {}",
                channels * height * width,
                data.len()
            )));
        }
        Ok(Self {
            channels,
            height,
            width,
            data,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// `(channels, height, width)` triple.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    #[inline]
    fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        (c * self.height + y) * self.width + x
    }

    /// Returns the element at `(channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> T {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "Tensor3 index OOB"
        );
        self.data[self.index(c, y, x)]
    }

    /// Returns the element at `(channel, y, x)` where `y`/`x` may fall into
    /// the (zero) padding region, i.e. be negative or beyond the edge.
    ///
    /// This is the access pattern of a padded convolution: out-of-image
    /// coordinates read as `T::ZERO`.
    #[inline]
    pub fn get_padded(&self, c: usize, y: isize, x: isize) -> T {
        if y < 0 || x < 0 || y as usize >= self.height || x as usize >= self.width {
            T::ZERO
        } else {
            self.data[self.index(c, y as usize, x as usize)]
        }
    }

    /// Writes the element at `(channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, value: T) {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "Tensor3 index OOB"
        );
        let i = self.index(c, y, x);
        self.data[i] = value;
    }

    /// Adds `value` to the element at `(channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn add_assign_at(&mut self, c: usize, y: usize, x: usize, value: T) {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "Tensor3 index OOB"
        );
        let i = self.index(c, y, x);
        self.data[i] += value;
    }

    /// Immutable view of the backing storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

/// A dense `out_channels × in_channels × kernel_h × kernel_w` weight bank.
///
/// # Example
///
/// ```
/// use pim_tensor::Tensor4;
///
/// let w: Tensor4<f32> = Tensor4::zeros(8, 4, 3, 3);
/// assert_eq!(w.dims(), (8, 4, 3, 3));
/// assert_eq!(w.get(7, 3, 2, 2), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4<T> {
    out_channels: usize,
    in_channels: usize,
    kernel_h: usize,
    kernel_w: usize,
    data: Vec<T>,
}

impl<T: Scalar> Tensor4<T> {
    /// Creates a zero-filled weight bank.
    pub fn zeros(
        out_channels: usize,
        in_channels: usize,
        kernel_h: usize,
        kernel_w: usize,
    ) -> Self {
        Self {
            out_channels,
            in_channels,
            kernel_h,
            kernel_w,
            data: vec![T::ZERO; out_channels * in_channels * kernel_h * kernel_w],
        }
    }

    /// Creates a weight bank from an `OC`-major element vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the element count does not match.
    pub fn from_vec(
        out_channels: usize,
        in_channels: usize,
        kernel_h: usize,
        kernel_w: usize,
        data: Vec<T>,
    ) -> Result<Self> {
        let expect = out_channels * in_channels * kernel_h * kernel_w;
        if data.len() != expect {
            return Err(ShapeError::new(format!(
                "Tensor4 expects {expect} elements, got {}",
                data.len()
            )));
        }
        Ok(Self {
            out_channels,
            in_channels,
            kernel_h,
            kernel_w,
            data,
        })
    }

    /// Number of output channels (kernels).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Number of input channels per kernel.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Kernel height.
    pub fn kernel_h(&self) -> usize {
        self.kernel_h
    }

    /// Kernel width.
    pub fn kernel_w(&self) -> usize {
        self.kernel_w
    }

    /// `(out_channels, in_channels, kernel_h, kernel_w)` tuple.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (
            self.out_channels,
            self.in_channels,
            self.kernel_h,
            self.kernel_w,
        )
    }

    #[inline]
    fn index(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> usize {
        ((oc * self.in_channels + ic) * self.kernel_h + ky) * self.kernel_w + kx
    }

    /// Returns the weight at `(oc, ic, ky, kx)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn get(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> T {
        assert!(
            oc < self.out_channels
                && ic < self.in_channels
                && ky < self.kernel_h
                && kx < self.kernel_w,
            "Tensor4 index OOB"
        );
        self.data[self.index(oc, ic, ky, kx)]
    }

    /// Writes the weight at `(oc, ic, ky, kx)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn set(&mut self, oc: usize, ic: usize, ky: usize, kx: usize, value: T) {
        assert!(
            oc < self.out_channels
                && ic < self.in_channels
                && ky < self.kernel_h
                && kx < self.kernel_w,
            "Tensor4 index OOB"
        );
        let i = self.index(oc, ic, ky, kx);
        self.data[i] = value;
    }

    /// Immutable view of the backing storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor2_round_trip() {
        let mut m: Tensor2<i32> = Tensor2::zeros(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                m.set(r, c, (r * 4 + c) as i32);
            }
        }
        assert_eq!(m.get(2, 3), 11);
        assert_eq!(m.row(1), &[4, 5, 6, 7]);
        assert_eq!(m.clone().into_vec().len(), 12);
        assert_eq!(m.dims(), (3, 4));
    }

    #[test]
    fn tensor2_from_vec_validates_len() {
        assert!(Tensor2::<i32>::from_vec(2, 2, vec![1, 2, 3]).is_err());
        let m = Tensor2::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(m.get(1, 0), 3);
    }

    #[test]
    fn tensor2_add_assign_accumulates() {
        let mut m: Tensor2<i64> = Tensor2::zeros(1, 1);
        m.add_assign_at(0, 0, 3);
        m.add_assign_at(0, 0, 4);
        assert_eq!(m.get(0, 0), 7);
    }

    #[test]
    #[should_panic(expected = "Tensor2 index OOB")]
    fn tensor2_oob_get_panics() {
        let m: Tensor2<i32> = Tensor2::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn tensor3_layout_is_channel_major() {
        let t = Tensor3::from_vec(2, 2, 2, vec![0, 1, 2, 3, 10, 11, 12, 13]).unwrap();
        assert_eq!(t.get(0, 0, 0), 0);
        assert_eq!(t.get(0, 1, 1), 3);
        assert_eq!(t.get(1, 0, 0), 10);
        assert_eq!(t.get(1, 1, 0), 12);
    }

    #[test]
    fn tensor3_padded_reads_zero_outside() {
        let t = Tensor3::from_vec(1, 2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(t.get_padded(0, -1, 0), 0);
        assert_eq!(t.get_padded(0, 0, -1), 0);
        assert_eq!(t.get_padded(0, 2, 0), 0);
        assert_eq!(t.get_padded(0, 1, 1), 4);
    }

    #[test]
    fn tensor3_from_vec_validates_len() {
        assert!(Tensor3::<i32>::from_vec(1, 2, 2, vec![1]).is_err());
    }

    #[test]
    fn tensor4_layout_is_oc_major() {
        let mut w: Tensor4<i32> = Tensor4::zeros(2, 1, 2, 2);
        w.set(1, 0, 1, 1, 99);
        assert_eq!(w.as_slice()[7], 99);
        assert_eq!(w.get(1, 0, 1, 1), 99);
        assert_eq!(w.get(0, 0, 1, 1), 0);
    }

    #[test]
    fn tensor4_from_vec_validates_len() {
        assert!(Tensor4::<f32>::from_vec(1, 1, 3, 3, vec![0.0; 8]).is_err());
        assert!(Tensor4::<f32>::from_vec(1, 1, 3, 3, vec![0.0; 9]).is_ok());
    }

    #[test]
    #[should_panic(expected = "Tensor3 index OOB")]
    fn tensor3_oob_set_panics() {
        let mut t: Tensor3<i32> = Tensor3::zeros(1, 1, 1);
        t.set(0, 1, 0, 5);
    }
}
