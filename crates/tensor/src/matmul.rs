//! Dense matrix multiplication and crossbar-style column MVMs.
//!
//! Used by the im2col convolution path and by the crossbar simulator's
//! hot loop. Correctness and exactness come first: every kernel here
//! accumulates each output element in ascending inner-index order with
//! the same skip-zero rule, so the allocation-free (`*_into`) and
//! batched variants are bit-identical to the textbook loops — for
//! floats as well as integers. Within that constraint the inner loops
//! are cache-blocked: [`matmul_into`] tiles the output columns so the
//! active output slice stays resident, and [`column_mvm_batch_into`]
//! reuses each weight row across the whole batch (one read of the
//! matrix per batch instead of one per input vector).

use crate::{Result, Scalar, ShapeError, Tensor2};

/// Output-column block width of [`matmul_into`]: the active output
/// slice (`BLOCK_COLS` elements) plus one input row stay cache-resident
/// while the full inner dimension streams by.
const BLOCK_COLS: usize = 128;

/// Computes the product `a · b` of an `m×k` and a `k×n` matrix.
///
/// # Errors
///
/// Returns [`ShapeError`] if the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use pim_tensor::{matmul::matmul, Tensor2};
///
/// let a = Tensor2::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
/// let b = Tensor2::from_vec(2, 1, vec![5, 6]).unwrap();
/// let c = matmul(&a, &b).unwrap();
/// assert_eq!(c.as_slice(), &[17, 39]);
/// ```
pub fn matmul<T: Scalar>(a: &Tensor2<T>, b: &Tensor2<T>) -> Result<Tensor2<T>> {
    let mut out = Tensor2::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut out)?;
    Ok(out)
}

/// Computes `a · b` into a caller-provided output matrix, reusing its
/// allocation — the allocation-free core of [`matmul`].
///
/// The inner loops are blocked over output columns, but every output
/// element still accumulates its products in ascending inner-index
/// order with the same skip-zero rule, so the result is bit-identical
/// to the textbook triple loop (floats included).
///
/// # Errors
///
/// Returns [`ShapeError`] if the inner dimensions disagree or `out` is
/// not `a.rows() × b.cols()`.
pub fn matmul_into<T: Scalar>(a: &Tensor2<T>, b: &Tensor2<T>, out: &mut Tensor2<T>) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new(format!(
            "matmul inner dims disagree: {}x{} . {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    if out.dims() != (a.rows(), b.cols()) {
        return Err(ShapeError::new(format!(
            "matmul output must be {}x{}, got {}x{}",
            a.rows(),
            b.cols(),
            out.rows(),
            out.cols()
        )));
    }
    let (m, k) = a.dims();
    let n = b.cols();
    out.fill_zero();
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + BLOCK_COLS).min(n);
        for i in 0..m {
            let arow = a.row(i);
            for (p, &aip) in arow.iter().enumerate().take(k) {
                if aip == T::ZERO {
                    continue;
                }
                let bblk = &b.row(p)[j0..j1];
                let oblk = &mut out.row_mut(i)[j0..j1];
                for (acc, &w) in oblk.iter_mut().zip(bblk.iter()) {
                    *acc += aip * w;
                }
            }
        }
        j0 = j1;
    }
    Ok(())
}

/// Computes the matrix-vector product `a · x`.
///
/// This is the digital model of one crossbar read: `x` drives the rows, the
/// result is the per-column accumulated current.
///
/// # Errors
///
/// Returns [`ShapeError`] if `x.len() != a.rows()` — note the *rows*: the
/// crossbar convention used throughout this project stores one kernel per
/// **column**, so the product computed is `aᵀx` expressed as column sums.
///
/// # Example
///
/// ```
/// use pim_tensor::{matmul::column_mvm, Tensor2};
///
/// // Two columns holding weights (1,3) and (2,4).
/// let a = Tensor2::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
/// let y = column_mvm(&a, &[10, 100]).unwrap();
/// assert_eq!(y, vec![310, 420]);
/// ```
pub fn column_mvm<T: Scalar>(a: &Tensor2<T>, x: &[T]) -> Result<Vec<T>> {
    let mut out = Vec::new();
    column_mvm_into(a, x, &mut out)?;
    Ok(out)
}

/// [`column_mvm`] into a caller-provided buffer: `out` is cleared and
/// resized to `a.cols()`, reusing its allocation — the simulator's
/// per-MVM hot path allocates nothing.
///
/// # Errors
///
/// Returns [`ShapeError`] if `x.len() != a.rows()`.
pub fn column_mvm_into<T: Scalar>(a: &Tensor2<T>, x: &[T], out: &mut Vec<T>) -> Result<()> {
    if x.len() != a.rows() {
        return Err(ShapeError::new(format!(
            "column_mvm expects input of length {}, got {}",
            a.rows(),
            x.len()
        )));
    }
    out.clear();
    out.resize(a.cols(), T::ZERO);
    for (r, &xr) in x.iter().enumerate() {
        if xr == T::ZERO {
            continue;
        }
        let row = a.row(r);
        for (acc, &w) in out.iter_mut().zip(row.iter()) {
            *acc += xr * w;
        }
    }
    Ok(())
}

/// A whole batch of column MVMs against one matrix: `inputs` packs
/// `batch` row-major input vectors of length `a.rows()`, and `out` is
/// cleared and resized to `batch × a.cols()` results, packed the same
/// way.
///
/// The loop order visits each matrix row once and applies it to every
/// batch element while it is cache-resident, so the matrix is read from
/// memory once per *batch* instead of once per *input vector* — the
/// data-reuse core of the batched simulator. Each output element still
/// accumulates in ascending row order with [`column_mvm`]'s skip-zero
/// rule, so every result is bit-identical to `batch` independent
/// [`column_mvm`] calls.
///
/// # Errors
///
/// Returns [`ShapeError`] if `inputs.len() != batch * a.rows()` or
/// `batch == 0`.
pub fn column_mvm_batch_into<T: Scalar>(
    a: &Tensor2<T>,
    inputs: &[T],
    batch: usize,
    out: &mut Vec<T>,
) -> Result<()> {
    if batch == 0 {
        return Err(ShapeError::new("column_mvm batch must be >= 1"));
    }
    let rows = a.rows();
    let cols = a.cols();
    if inputs.len() != batch * rows {
        return Err(ShapeError::new(format!(
            "column_mvm batch of {batch} expects {} packed inputs, got {}",
            batch * rows,
            inputs.len()
        )));
    }
    out.clear();
    out.resize(batch * cols, T::ZERO);
    for r in 0..rows {
        let row = a.row(r);
        for bi in 0..batch {
            let xr = inputs[bi * rows + r];
            if xr == T::ZERO {
                continue;
            }
            let acc = &mut out[bi * cols..(bi + 1) * cols];
            for (slot, &w) in acc.iter_mut().zip(row.iter()) {
                *slot += xr * w;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_matrix_is_matrix() {
        let mut id: Tensor2<i64> = Tensor2::zeros(3, 3);
        for i in 0..3 {
            id.set(i, i, 1);
        }
        let b = Tensor2::from_vec(3, 2, vec![1, 2, 3, 4, 5, 6]).unwrap();
        let c = matmul(&id, &b).unwrap();
        assert_eq!(c, b);
    }

    #[test]
    fn rectangular_product_matches_hand_computation() {
        let a = Tensor2::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]).unwrap();
        let b = Tensor2::from_vec(3, 2, vec![7, 8, 9, 10, 11, 12]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58, 64, 139, 154]);
    }

    #[test]
    fn mismatched_dims_error() {
        let a: Tensor2<i32> = Tensor2::zeros(2, 3);
        let b: Tensor2<i32> = Tensor2::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn column_mvm_matches_matmul() {
        let a = Tensor2::from_vec(3, 2, vec![1, 2, 3, 4, 5, 6]).unwrap();
        let x = vec![7i32, 8, 9];
        let via_mvm = column_mvm(&a, &x).unwrap();
        // Compare against xᵀ·a computed with matmul.
        let xm = Tensor2::from_vec(1, 3, x).unwrap();
        let prod = matmul(&xm, &a).unwrap();
        assert_eq!(via_mvm, prod.as_slice());
    }

    #[test]
    fn column_mvm_rejects_bad_length() {
        let a: Tensor2<i32> = Tensor2::zeros(3, 2);
        assert!(column_mvm(&a, &[1, 2]).is_err());
    }

    #[test]
    fn zero_rows_are_skipped_but_counted() {
        let a = Tensor2::from_vec(2, 2, vec![1, 1, 1, 1]).unwrap();
        let y = column_mvm(&a, &[0, 5]).unwrap();
        assert_eq!(y, vec![5, 5]);
    }

    #[test]
    fn matmul_into_reuses_dirty_buffers() {
        let a = Tensor2::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]).unwrap();
        let b = Tensor2::from_vec(3, 2, vec![7, 8, 9, 10, 11, 12]).unwrap();
        let mut out = Tensor2::from_vec(2, 2, vec![99, 99, 99, 99]).unwrap();
        matmul_into(&a, &b, &mut out).unwrap();
        assert_eq!(out.as_slice(), &[58, 64, 139, 154]);
        let mut wrong: Tensor2<i64> = Tensor2::zeros(3, 2);
        assert!(matmul_into(&a, &b, &mut wrong).is_err());
    }

    #[test]
    fn blocked_matmul_matches_unblocked_beyond_one_block() {
        // Wider than BLOCK_COLS so at least two column blocks run.
        let a = crate::gen::random2::<i64>(7, 19, 31);
        let b = crate::gen::random2::<i64>(19, 300, 32);
        let blocked = matmul(&a, &b).unwrap();
        let mut naive = Tensor2::zeros(7, 300);
        for i in 0..7 {
            for p in 0..19 {
                for j in 0..300 {
                    naive.add_assign_at(i, j, a.get(i, p) * b.get(p, j));
                }
            }
        }
        assert_eq!(blocked, naive);
    }

    #[test]
    fn blocked_matmul_is_bit_identical_for_floats() {
        // Accumulation order per output element must be unchanged by
        // blocking, so float results are bitwise equal, not just close.
        let a = crate::gen::random2::<f64>(5, 23, 33);
        let b = crate::gen::random2::<f64>(23, 200, 34);
        let blocked = matmul(&a, &b).unwrap();
        let mut naive = Tensor2::zeros(5, 200);
        for i in 0..5 {
            for p in 0..23 {
                let aip = a.get(i, p);
                if aip == 0.0 {
                    continue;
                }
                for j in 0..200 {
                    naive.add_assign_at(i, j, aip * b.get(p, j));
                }
            }
        }
        assert_eq!(blocked, naive);
    }

    #[test]
    fn column_mvm_into_resizes_and_matches() {
        let a = Tensor2::from_vec(3, 2, vec![1, 2, 3, 4, 5, 6]).unwrap();
        let x = [7i32, 8, 9];
        let mut out = vec![42i32; 17];
        column_mvm_into(&a, &x, &mut out).unwrap();
        assert_eq!(out, column_mvm(&a, &x).unwrap());
        assert!(column_mvm_into(&a, &[1, 2], &mut out).is_err());
    }

    #[test]
    fn batched_mvm_equals_independent_mvms() {
        let a = crate::gen::random2::<i64>(13, 9, 77);
        let batch = 5;
        let mut inputs = Vec::new();
        for bi in 0..batch {
            inputs.extend(crate::gen::random2::<i64>(1, 13, 100 + bi as u64).into_vec());
        }
        let mut packed = Vec::new();
        column_mvm_batch_into(&a, &inputs, batch, &mut packed).unwrap();
        assert_eq!(packed.len(), batch * 9);
        for bi in 0..batch {
            let single = column_mvm(&a, &inputs[bi * 13..(bi + 1) * 13]).unwrap();
            assert_eq!(
                &packed[bi * 9..(bi + 1) * 9],
                single.as_slice(),
                "lane {bi}"
            );
        }
    }

    #[test]
    fn batched_mvm_validates_packing() {
        let a: Tensor2<i64> = Tensor2::zeros(4, 3);
        let mut out = Vec::new();
        assert!(column_mvm_batch_into(&a, &[0; 8], 2, &mut out).is_ok());
        assert!(column_mvm_batch_into(&a, &[0; 7], 2, &mut out).is_err());
        assert!(column_mvm_batch_into(&a, &[], 0, &mut out).is_err());
    }
}
