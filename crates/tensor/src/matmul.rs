//! Naive dense matrix multiplication.
//!
//! Used by the im2col convolution path and by tests that cross-check the
//! crossbar simulator. Performance is irrelevant here — correctness and
//! exactness (for integer scalars) are what matter — so the implementation
//! is the textbook triple loop.

use crate::{Result, Scalar, ShapeError, Tensor2};

/// Computes the product `a · b` of an `m×k` and a `k×n` matrix.
///
/// # Errors
///
/// Returns [`ShapeError`] if the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use pim_tensor::{matmul::matmul, Tensor2};
///
/// let a = Tensor2::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
/// let b = Tensor2::from_vec(2, 1, vec![5, 6]).unwrap();
/// let c = matmul(&a, &b).unwrap();
/// assert_eq!(c.as_slice(), &[17, 39]);
/// ```
pub fn matmul<T: Scalar>(a: &Tensor2<T>, b: &Tensor2<T>) -> Result<Tensor2<T>> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new(format!(
            "matmul inner dims disagree: {}x{} . {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let (m, k) = a.dims();
    let n = b.cols();
    let mut out = Tensor2::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a.get(i, p);
            if aip == T::ZERO {
                continue;
            }
            for j in 0..n {
                out.add_assign_at(i, j, aip * b.get(p, j));
            }
        }
    }
    Ok(out)
}

/// Computes the matrix-vector product `a · x`.
///
/// This is the digital model of one crossbar read: `x` drives the rows, the
/// result is the per-column accumulated current.
///
/// # Errors
///
/// Returns [`ShapeError`] if `x.len() != a.rows()` — note the *rows*: the
/// crossbar convention used throughout this project stores one kernel per
/// **column**, so the product computed is `aᵀx` expressed as column sums.
///
/// # Example
///
/// ```
/// use pim_tensor::{matmul::column_mvm, Tensor2};
///
/// // Two columns holding weights (1,3) and (2,4).
/// let a = Tensor2::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
/// let y = column_mvm(&a, &[10, 100]).unwrap();
/// assert_eq!(y, vec![310, 420]);
/// ```
pub fn column_mvm<T: Scalar>(a: &Tensor2<T>, x: &[T]) -> Result<Vec<T>> {
    if x.len() != a.rows() {
        return Err(ShapeError::new(format!(
            "column_mvm expects input of length {}, got {}",
            a.rows(),
            x.len()
        )));
    }
    let mut out = vec![T::ZERO; a.cols()];
    for (r, &xr) in x.iter().enumerate() {
        if xr == T::ZERO {
            continue;
        }
        let row = a.row(r);
        for (acc, &w) in out.iter_mut().zip(row.iter()) {
            *acc += xr * w;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_matrix_is_matrix() {
        let mut id: Tensor2<i64> = Tensor2::zeros(3, 3);
        for i in 0..3 {
            id.set(i, i, 1);
        }
        let b = Tensor2::from_vec(3, 2, vec![1, 2, 3, 4, 5, 6]).unwrap();
        let c = matmul(&id, &b).unwrap();
        assert_eq!(c, b);
    }

    #[test]
    fn rectangular_product_matches_hand_computation() {
        let a = Tensor2::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]).unwrap();
        let b = Tensor2::from_vec(3, 2, vec![7, 8, 9, 10, 11, 12]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58, 64, 139, 154]);
    }

    #[test]
    fn mismatched_dims_error() {
        let a: Tensor2<i32> = Tensor2::zeros(2, 3);
        let b: Tensor2<i32> = Tensor2::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn column_mvm_matches_matmul() {
        let a = Tensor2::from_vec(3, 2, vec![1, 2, 3, 4, 5, 6]).unwrap();
        let x = vec![7i32, 8, 9];
        let via_mvm = column_mvm(&a, &x).unwrap();
        // Compare against xᵀ·a computed with matmul.
        let xm = Tensor2::from_vec(1, 3, x).unwrap();
        let prod = matmul(&xm, &a).unwrap();
        assert_eq!(via_mvm, prod.as_slice());
    }

    #[test]
    fn column_mvm_rejects_bad_length() {
        let a: Tensor2<i32> = Tensor2::zeros(3, 2);
        assert!(column_mvm(&a, &[1, 2]).is_err());
    }

    #[test]
    fn zero_rows_are_skipped_but_counted() {
        let a = Tensor2::from_vec(2, 2, vec![1, 1, 1, 1]).unwrap();
        let y = column_mvm(&a, &[0, 5]).unwrap();
        assert_eq!(y, vec![5, 5]);
    }
}
