//! Deterministic tensor generators for tests, examples and benches.
//!
//! The mapping problem studied by VW-SDK depends only on layer *shapes*;
//! weight and activation values merely need to be diverse enough to expose
//! indexing bugs in the functional simulator. Generators here are seeded, so
//! every test and experiment is reproducible bit-for-bit.
//!
//! Values are kept small (|v| ≤ 8) so that integer accumulations stay far
//! from overflow and float accumulations stay exact.

use crate::{Scalar, Tensor2, Tensor3, Tensor4};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Small signed magnitude used by the random generators.
const MAGNITUDE: u16 = 8;

fn next_value<T: Scalar>(rng: &mut StdRng) -> T {
    // Sample in [-MAGNITUDE, MAGNITUDE], excluding nothing; zero included so
    // sparsity paths (skipped rows) are exercised too.
    let v = rng.gen_range(0..=2 * MAGNITUDE);
    if v >= MAGNITUDE {
        T::from_u16(v - MAGNITUDE)
    } else {
        -T::from_u16(MAGNITUDE - v)
    }
}

/// A `rows × cols` matrix with the deterministic ramp `0, 1, 2, …` (values
/// taken modulo 251 to stay small).
pub fn ramp2<T: Scalar>(rows: usize, cols: usize) -> Tensor2<T> {
    let data = (0..rows * cols)
        .map(|i| T::from_u16((i % 251) as u16))
        .collect();
    Tensor2::from_vec(rows, cols, data).expect("ramp2 length is consistent by construction")
}

/// A `c × h × w` feature map with the deterministic ramp pattern.
pub fn ramp3<T: Scalar>(c: usize, h: usize, w: usize) -> Tensor3<T> {
    let data = (0..c * h * w)
        .map(|i| T::from_u16((i % 251) as u16))
        .collect();
    Tensor3::from_vec(c, h, w, data).expect("ramp3 length is consistent by construction")
}

/// An `oc × ic × kh × kw` weight bank with the deterministic ramp pattern.
pub fn ramp4<T: Scalar>(oc: usize, ic: usize, kh: usize, kw: usize) -> Tensor4<T> {
    let data = (0..oc * ic * kh * kw)
        .map(|i| T::from_u16((i % 251) as u16))
        .collect();
    Tensor4::from_vec(oc, ic, kh, kw, data).expect("ramp4 length is consistent by construction")
}

/// A seeded pseudo-random `rows × cols` matrix with values in [-8, 8].
pub fn random2<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Tensor2<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols).map(|_| next_value(&mut rng)).collect();
    Tensor2::from_vec(rows, cols, data).expect("random2 length is consistent by construction")
}

/// A seeded pseudo-random `c × h × w` feature map with values in [-8, 8].
pub fn random3<T: Scalar>(c: usize, h: usize, w: usize, seed: u64) -> Tensor3<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..c * h * w).map(|_| next_value(&mut rng)).collect();
    Tensor3::from_vec(c, h, w, data).expect("random3 length is consistent by construction")
}

/// A seeded pseudo-random `oc × ic × kh × kw` weight bank with values in [-8, 8].
pub fn random4<T: Scalar>(oc: usize, ic: usize, kh: usize, kw: usize, seed: u64) -> Tensor4<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..oc * ic * kh * kw)
        .map(|_| next_value(&mut rng))
        .collect();
    Tensor4::from_vec(oc, ic, kh, kw, data).expect("random4 length is consistent by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramps_are_deterministic() {
        let a = ramp3::<i32>(2, 3, 3);
        let b = ramp3::<i32>(2, 3, 3);
        assert_eq!(a, b);
        assert_eq!(a.get(0, 0, 1), 1);
        assert_eq!(a.get(1, 0, 0), 9);
    }

    #[test]
    fn ramp_values_wrap_below_251() {
        let t = ramp2::<i32>(26, 10);
        assert!(t.as_slice().iter().all(|&v| (0..251).contains(&v)));
    }

    #[test]
    fn random_is_seed_stable() {
        let a = random3::<i64>(1, 4, 4, 99);
        let b = random3::<i64>(1, 4, 4, 99);
        let c = random3::<i64>(1, 4, 4, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_values_bounded() {
        let t = random4::<i32>(3, 3, 3, 3, 5);
        assert!(t.as_slice().iter().all(|&v| (-8..=8).contains(&v)));
        // Both signs should appear in a sample this large.
        assert!(t.as_slice().iter().any(|&v| v > 0));
        assert!(t.as_slice().iter().any(|&v| v < 0));
    }

    #[test]
    fn float_random_matches_integer_random() {
        // Same seed produces the same abstract values in every scalar domain.
        let i = random3::<i32>(1, 5, 5, 7);
        let f = random3::<f64>(1, 5, 5, 7);
        for (a, b) in i.as_slice().iter().zip(f.as_slice()) {
            assert_eq!(*a as f64, *b);
        }
    }
}
