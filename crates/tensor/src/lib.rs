//! Dense tensors and reference convolution kernels for the VW-SDK reproduction.
//!
//! The VW-SDK paper maps convolutional layers onto processing-in-memory (PIM)
//! crossbars. To *verify* that a mapping computes the correct convolution —
//! not just that its cycle count is low — the functional simulator in
//! `pim-sim` needs a trusted reference. This crate provides that reference:
//!
//! * [`Tensor2`], [`Tensor3`], [`Tensor4`] — minimal row-major dense tensors
//!   (matrix, `C×H×W` feature map, `OC×IC×KH×KW` weight bank);
//! * [`conv`] — direct and im2col-based 2-D convolution with stride, padding
//!   and dilation, plus grouped/depthwise variants;
//! * [`ops`] — the digital inter-stage operators (ReLU, max/avg pooling,
//!   int8-style requantization);
//! * [`mod@forward`] — the network-scale reference pass chaining convolutions
//!   through a [`pim_nets::Network`]'s inter-layer operators;
//! * [`matmul`] — the naive GEMM used by the im2col path;
//! * [`gen`] — deterministic pseudo-random tensor generators.
//!
//! Everything is generic over a small [`Scalar`] trait so tests can run in
//! exact integer arithmetic (`i32`/`i64`), where "simulated crossbar output
//! equals reference convolution" is an equality, not an approximation.
//!
//! # Example
//!
//! ```
//! use pim_tensor::{conv, gen, Conv2dParams, Tensor3, Tensor4};
//!
//! let ifm: Tensor3<i64> = gen::ramp3(3, 8, 8);
//! let weights: Tensor4<i64> = gen::ramp4(4, 3, 3, 3);
//! let ofm = conv::conv2d_direct(&ifm, &weights, Conv2dParams::unit()).unwrap();
//! assert_eq!(ofm.dims(), (4, 6, 6));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod conv;
pub mod forward;
pub mod gen;
pub mod matmul;
pub mod ops;
mod scalar;
mod tensor;

pub use conv::{
    conv2d_direct, conv2d_grouped, conv2d_im2col, conv2d_im2col_with, Conv2dParams, Im2colScratch,
};
pub use forward::{forward, ExecMode};
pub use scalar::Scalar;
pub use tensor::{Tensor2, Tensor3, Tensor4};

use std::error::Error;
use std::fmt;

/// Error raised when tensor shapes are inconsistent with an operation.
///
/// Produced by constructors that validate element counts and by the
/// convolution kernels when the kernel does not fit the (padded) input or
/// channel counts disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    /// Creates a shape error with the given human-readable description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.message)
    }
}

impl Error for ShapeError {}

/// Crate-wide result alias for shape-validated operations.
pub type Result<T> = std::result::Result<T, ShapeError>;
