//! Reference 2-D convolution kernels.
//!
//! Two independent implementations are provided so they can cross-check each
//! other (and, transitively, the PIM crossbar simulator):
//!
//! * [`conv2d_direct`] — the textbook seven-loop convolution;
//! * [`conv2d_im2col`] — lowering to a patch matrix followed by GEMM, which
//!   is also exactly the "image to column" mapping of the paper's Fig. 2(a).
//!
//! Both support stride, zero padding and dilation; [`conv2d_grouped`] adds
//! grouped/depthwise convolution for the MobileNet-style extension nets.

use crate::matmul::matmul_into;
use crate::{Result, Scalar, ShapeError, Tensor2, Tensor3, Tensor4};

/// Hyper-parameters of a 2-D convolution: stride, zero padding and dilation.
///
/// The VW-SDK paper evaluates unit-stride, unpadded convolutions (its window
/// arithmetic counts `I − K + 1` positions per axis); [`Conv2dParams::unit`]
/// is that configuration. The generalized fields exist for the extension
/// experiments and are honoured by every kernel in this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dParams {
    /// Vertical stride (≥ 1).
    pub stride_h: usize,
    /// Horizontal stride (≥ 1).
    pub stride_w: usize,
    /// Zero padding added to the top and bottom.
    pub pad_h: usize,
    /// Zero padding added to the left and right.
    pub pad_w: usize,
    /// Vertical dilation (≥ 1); 1 means a dense kernel.
    pub dilation_h: usize,
    /// Horizontal dilation (≥ 1).
    pub dilation_w: usize,
}

impl Conv2dParams {
    /// Unit stride, no padding, no dilation — the paper's configuration.
    pub fn unit() -> Self {
        Self {
            stride_h: 1,
            stride_w: 1,
            pad_h: 0,
            pad_w: 0,
            dilation_h: 1,
            dilation_w: 1,
        }
    }

    /// Uniform stride in both axes, no padding.
    pub fn with_stride(stride: usize) -> Self {
        Self {
            stride_h: stride,
            stride_w: stride,
            ..Self::unit()
        }
    }

    /// Uniform zero padding in both axes, unit stride.
    pub fn with_padding(pad: usize) -> Self {
        Self {
            pad_h: pad,
            pad_w: pad,
            ..Self::unit()
        }
    }

    /// Effective kernel extent along one axis after dilation.
    fn effective(extent: usize, dilation: usize) -> usize {
        (extent - 1) * dilation + 1
    }

    /// Output spatial size for an input of `(h, w)` and kernel `(kh, kw)`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the stride or dilation is zero, or if the
    /// (dilated) kernel does not fit inside the padded input.
    pub fn output_dims(&self, h: usize, w: usize, kh: usize, kw: usize) -> Result<(usize, usize)> {
        if self.stride_h == 0 || self.stride_w == 0 {
            return Err(ShapeError::new("stride must be >= 1"));
        }
        if self.dilation_h == 0 || self.dilation_w == 0 {
            return Err(ShapeError::new("dilation must be >= 1"));
        }
        if kh == 0 || kw == 0 {
            return Err(ShapeError::new("kernel must be non-empty"));
        }
        let eff_h = Self::effective(kh, self.dilation_h);
        let eff_w = Self::effective(kw, self.dilation_w);
        let padded_h = h + 2 * self.pad_h;
        let padded_w = w + 2 * self.pad_w;
        if eff_h > padded_h || eff_w > padded_w {
            return Err(ShapeError::new(format!(
                "kernel {eff_h}x{eff_w} (dilated) exceeds padded input {padded_h}x{padded_w}"
            )));
        }
        Ok((
            (padded_h - eff_h) / self.stride_h + 1,
            (padded_w - eff_w) / self.stride_w + 1,
        ))
    }
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Self::unit()
    }
}

fn check_channels<T: Scalar>(input: &Tensor3<T>, weights: &Tensor4<T>) -> Result<()> {
    if input.channels() != weights.in_channels() {
        return Err(ShapeError::new(format!(
            "input has {} channels but weights expect {}",
            input.channels(),
            weights.in_channels()
        )));
    }
    Ok(())
}

/// Direct (seven-loop) 2-D convolution.
///
/// The output has dimensions `(OC, OH, OW)` per [`Conv2dParams::output_dims`].
///
/// # Errors
///
/// Returns [`ShapeError`] if channel counts disagree or the kernel does not
/// fit the padded input.
///
/// # Example
///
/// ```
/// use pim_tensor::{conv2d_direct, Conv2dParams, Tensor3, Tensor4};
///
/// // 1x3x3 input, single 1x1x2x2 box kernel: each output is a 2x2 sum.
/// let ifm = Tensor3::from_vec(1, 3, 3, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]).unwrap();
/// let w = Tensor4::from_vec(1, 1, 2, 2, vec![1, 1, 1, 1]).unwrap();
/// let ofm = conv2d_direct(&ifm, &w, Conv2dParams::unit()).unwrap();
/// assert_eq!(ofm.as_slice(), &[12, 16, 24, 28]);
/// ```
pub fn conv2d_direct<T: Scalar>(
    input: &Tensor3<T>,
    weights: &Tensor4<T>,
    params: Conv2dParams,
) -> Result<Tensor3<T>> {
    check_channels(input, weights)?;
    let (oc, ic, kh, kw) = weights.dims();
    let (oh, ow) = params.output_dims(input.height(), input.width(), kh, kw)?;
    let mut out = Tensor3::zeros(oc, oh, ow);
    for o in 0..oc {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = T::ZERO;
                let base_y = (oy * params.stride_h) as isize - params.pad_h as isize;
                let base_x = (ox * params.stride_w) as isize - params.pad_w as isize;
                for c in 0..ic {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let iy = base_y + (ky * params.dilation_h) as isize;
                            let ix = base_x + (kx * params.dilation_w) as isize;
                            acc += input.get_padded(c, iy, ix) * weights.get(o, c, ky, kx);
                        }
                    }
                }
                out.set(o, oy, ox, acc);
            }
        }
    }
    Ok(out)
}

/// Lowers the input into the im2col patch matrix.
///
/// Row `r` of the result holds one flattened receptive field (channel-major,
/// then kernel-row-major) for output position `r` (row-major over `OH×OW`);
/// column order matches the weight flattening used by [`conv2d_im2col`].
/// This matrix *is* the sequence of input vectors that the paper's im2col
/// mapping drives into the crossbar rows, one row per computing cycle.
///
/// # Errors
///
/// Returns [`ShapeError`] if the kernel does not fit the padded input.
pub fn im2col_matrix<T: Scalar>(
    input: &Tensor3<T>,
    kh: usize,
    kw: usize,
    params: Conv2dParams,
) -> Result<Tensor2<T>> {
    let (oh, ow) = params.output_dims(input.height(), input.width(), kh, kw)?;
    let ic = input.channels();
    let mut m = Tensor2::zeros(oh * ow, ic * kh * kw);
    im2col_fill(&mut m, input, kh, kw, params, oh, ow);
    Ok(m)
}

/// Fills a correctly-sized patch matrix in place (the body of
/// [`im2col_matrix`], shared with the scratch-reusing path).
fn im2col_fill<T: Scalar>(
    m: &mut Tensor2<T>,
    input: &Tensor3<T>,
    kh: usize,
    kw: usize,
    params: Conv2dParams,
    oh: usize,
    ow: usize,
) {
    let ic = input.channels();
    for oy in 0..oh {
        for ox in 0..ow {
            let r = oy * ow + ox;
            let base_y = (oy * params.stride_h) as isize - params.pad_h as isize;
            let base_x = (ox * params.stride_w) as isize - params.pad_w as isize;
            let mut col = 0;
            for c in 0..ic {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let iy = base_y + (ky * params.dilation_h) as isize;
                        let ix = base_x + (kx * params.dilation_w) as isize;
                        m.set(r, col, input.get_padded(c, iy, ix));
                        col += 1;
                    }
                }
            }
        }
    }
}

/// Reusable intermediate buffers for [`conv2d_im2col_with`]: the patch
/// matrix, the flattened weight matrix and the GEMM product.
///
/// The im2col lowering allocates three matrices whose combined size
/// dwarfs the output; callers convolving many inputs (the batched
/// simulator's reference checks, benchmarks) keep one scratch alive and
/// pay the allocation once. Buffers are lazily (re)sized, so one
/// scratch serves convolutions of different shapes.
#[derive(Debug, Clone, Default)]
pub struct Im2colScratch<T> {
    patches: Option<Tensor2<T>>,
    wmat: Option<Tensor2<T>>,
    prod: Option<Tensor2<T>>,
}

impl<T: Scalar> Im2colScratch<T> {
    /// An empty scratch; buffers materialize on first use.
    pub fn new() -> Self {
        Self {
            patches: None,
            wmat: None,
            prod: None,
        }
    }
}

/// Returns a scratch buffer resized to `rows × cols` (reusing the
/// allocation when the shape already matches).
fn ensure_shape<T: Scalar>(slot: &mut Option<Tensor2<T>>, rows: usize, cols: usize) {
    match slot {
        Some(t) if t.dims() == (rows, cols) => {}
        _ => *slot = Some(Tensor2::zeros(rows, cols)),
    }
}

/// im2col + GEMM convolution; numerically identical to [`conv2d_direct`]
/// (bit-exact for integer scalars).
///
/// # Errors
///
/// Returns [`ShapeError`] under the same conditions as [`conv2d_direct`].
pub fn conv2d_im2col<T: Scalar>(
    input: &Tensor3<T>,
    weights: &Tensor4<T>,
    params: Conv2dParams,
) -> Result<Tensor3<T>> {
    conv2d_im2col_with(input, weights, params, &mut Im2colScratch::new())
}

/// [`conv2d_im2col`] with caller-owned scratch buffers: repeated calls
/// reuse the patch/weight/product matrices instead of reallocating
/// them. Results are identical to [`conv2d_im2col`] bit for bit.
///
/// # Errors
///
/// Returns [`ShapeError`] under the same conditions as [`conv2d_direct`].
pub fn conv2d_im2col_with<T: Scalar>(
    input: &Tensor3<T>,
    weights: &Tensor4<T>,
    params: Conv2dParams,
    scratch: &mut Im2colScratch<T>,
) -> Result<Tensor3<T>> {
    check_channels(input, weights)?;
    let (oc, ic, kh, kw) = weights.dims();
    let (oh, ow) = params.output_dims(input.height(), input.width(), kh, kw)?;
    ensure_shape(&mut scratch.patches, oh * ow, ic * kh * kw);
    let patches = scratch.patches.as_mut().expect("ensured above");
    im2col_fill(patches, input, kh, kw, params, oh, ow);
    // Weight matrix: one kernel per column (the crossbar orientation).
    ensure_shape(&mut scratch.wmat, ic * kh * kw, oc);
    let wmat = scratch.wmat.as_mut().expect("ensured above");
    for o in 0..oc {
        let mut row = 0;
        for c in 0..ic {
            for ky in 0..kh {
                for kx in 0..kw {
                    wmat.set(row, o, weights.get(o, c, ky, kx));
                    row += 1;
                }
            }
        }
    }
    ensure_shape(&mut scratch.prod, oh * ow, oc);
    let prod = scratch.prod.as_mut().expect("ensured above");
    matmul_into(
        scratch.patches.as_ref().expect("ensured above"),
        scratch.wmat.as_ref().expect("ensured above"),
        prod,
    )?;
    let mut out = Tensor3::zeros(oc, oh, ow);
    for oy in 0..oh {
        for ox in 0..ow {
            for o in 0..oc {
                out.set(o, oy, ox, prod.get(oy * ow + ox, o));
            }
        }
    }
    Ok(out)
}

/// Grouped convolution: input and output channels are split into `groups`
/// contiguous blocks convolved independently (depthwise when
/// `groups == IC == OC`).
///
/// `weights` must have `in_channels = IC / groups`.
///
/// # Errors
///
/// Returns [`ShapeError`] if channel counts are not divisible by `groups`
/// or the per-group shapes disagree.
pub fn conv2d_grouped<T: Scalar>(
    input: &Tensor3<T>,
    weights: &Tensor4<T>,
    params: Conv2dParams,
    groups: usize,
) -> Result<Tensor3<T>> {
    if groups == 0 {
        return Err(ShapeError::new("groups must be >= 1"));
    }
    let ic = input.channels();
    let (oc, wic, kh, kw) = weights.dims();
    if !ic.is_multiple_of(groups) || oc % groups != 0 {
        return Err(ShapeError::new(format!(
            "channels (IC={ic}, OC={oc}) not divisible by groups={groups}"
        )));
    }
    let icg = ic / groups;
    let ocg = oc / groups;
    if wic != icg {
        return Err(ShapeError::new(format!(
            "weights expect {wic} in-channels per group, input provides {icg}"
        )));
    }
    let (oh, ow) = params.output_dims(input.height(), input.width(), kh, kw)?;
    let mut out = Tensor3::zeros(oc, oh, ow);
    for g in 0..groups {
        // Slice out the group's input channels.
        let mut gin = Tensor3::zeros(icg, input.height(), input.width());
        for c in 0..icg {
            for y in 0..input.height() {
                for x in 0..input.width() {
                    gin.set(c, y, x, input.get(g * icg + c, y, x));
                }
            }
        }
        let mut gw = Tensor4::zeros(ocg, icg, kh, kw);
        for o in 0..ocg {
            for c in 0..icg {
                for ky in 0..kh {
                    for kx in 0..kw {
                        gw.set(o, c, ky, kx, weights.get(g * ocg + o, c, ky, kx));
                    }
                }
            }
        }
        let gout = conv2d_direct(&gin, &gw, params)?;
        for o in 0..ocg {
            for y in 0..oh {
                for x in 0..ow {
                    out.set(g * ocg + o, y, x, gout.get(o, y, x));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn output_dims_basic() {
        let p = Conv2dParams::unit();
        assert_eq!(p.output_dims(5, 5, 3, 3).unwrap(), (3, 3));
        assert_eq!(p.output_dims(224, 224, 3, 3).unwrap(), (222, 222));
    }

    #[test]
    fn output_dims_stride_and_pad() {
        let p = Conv2dParams {
            stride_h: 2,
            stride_w: 2,
            pad_h: 3,
            pad_w: 3,
            ..Conv2dParams::unit()
        };
        // ResNet-18 stem: 224x224, 7x7/2 pad 3 -> 112x112.
        assert_eq!(p.output_dims(224, 224, 7, 7).unwrap(), (112, 112));
    }

    #[test]
    fn output_dims_dilation() {
        let p = Conv2dParams {
            dilation_h: 2,
            dilation_w: 2,
            ..Conv2dParams::unit()
        };
        // Effective kernel 5x5 on a 7x7 input -> 3x3.
        assert_eq!(p.output_dims(7, 7, 3, 3).unwrap(), (3, 3));
    }

    #[test]
    fn output_dims_rejects_oversized_kernel() {
        assert!(Conv2dParams::unit().output_dims(2, 2, 3, 3).is_err());
    }

    #[test]
    fn output_dims_rejects_zero_stride() {
        let p = Conv2dParams {
            stride_h: 0,
            ..Conv2dParams::unit()
        };
        assert!(p.output_dims(5, 5, 3, 3).is_err());
    }

    #[test]
    fn direct_single_pixel_identity() {
        // 1x1 kernel with weight 1 copies the input.
        let ifm = gen::ramp3::<i32>(2, 3, 3);
        let w = Tensor4::from_vec(2, 2, 1, 1, vec![1, 0, 0, 1]).unwrap();
        let o = conv2d_direct(&ifm, &w, Conv2dParams::unit()).unwrap();
        assert_eq!(o, ifm);
    }

    #[test]
    fn direct_matches_hand_example_with_padding() {
        let ifm = Tensor3::from_vec(1, 2, 2, vec![1, 2, 3, 4]).unwrap();
        let w = Tensor4::from_vec(1, 1, 3, 3, vec![0, 0, 0, 0, 1, 0, 0, 0, 0]).unwrap();
        let o = conv2d_direct(&ifm, &w, Conv2dParams::with_padding(1)).unwrap();
        // Center-tap kernel with pad 1 reproduces the input.
        assert_eq!(o.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn im2col_matches_direct_unit() {
        let ifm = gen::random3::<i64>(3, 9, 9, 42);
        let w = gen::random4::<i64>(5, 3, 3, 3, 43);
        let a = conv2d_direct(&ifm, &w, Conv2dParams::unit()).unwrap();
        let b = conv2d_im2col(&ifm, &w, Conv2dParams::unit()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn im2col_matches_direct_strided_padded() {
        let p = Conv2dParams {
            stride_h: 2,
            stride_w: 3,
            pad_h: 1,
            pad_w: 2,
            ..Conv2dParams::unit()
        };
        let ifm = gen::random3::<i64>(2, 11, 13, 7);
        let w = gen::random4::<i64>(4, 2, 3, 5, 8);
        let a = conv2d_direct(&ifm, &w, p).unwrap();
        let b = conv2d_im2col(&ifm, &w, p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn im2col_scratch_reuse_is_bit_identical() {
        // One scratch across convolutions of different shapes, with dirty
        // buffers in between, still matches the fresh-allocation path.
        let mut scratch = Im2colScratch::new();
        let big_ifm = gen::random3::<i64>(3, 9, 9, 42);
        let big_w = gen::random4::<i64>(5, 3, 3, 3, 43);
        let small_ifm = gen::random3::<i64>(2, 6, 6, 44);
        let small_w = gen::random4::<i64>(4, 2, 3, 3, 45);
        for _ in 0..3 {
            let a =
                conv2d_im2col_with(&big_ifm, &big_w, Conv2dParams::unit(), &mut scratch).unwrap();
            assert_eq!(
                a,
                conv2d_im2col(&big_ifm, &big_w, Conv2dParams::unit()).unwrap()
            );
            let b = conv2d_im2col_with(&small_ifm, &small_w, Conv2dParams::unit(), &mut scratch)
                .unwrap();
            assert_eq!(
                b,
                conv2d_im2col(&small_ifm, &small_w, Conv2dParams::unit()).unwrap()
            );
        }
    }

    #[test]
    fn im2col_matrix_shape() {
        let ifm = gen::ramp3::<i32>(4, 6, 6);
        let m = im2col_matrix(&ifm, 3, 3, Conv2dParams::unit()).unwrap();
        assert_eq!(m.dims(), (16, 36));
    }

    #[test]
    fn grouped_equals_dense_when_one_group() {
        let ifm = gen::random3::<i64>(4, 6, 6, 11);
        let w = gen::random4::<i64>(6, 4, 3, 3, 12);
        let dense = conv2d_direct(&ifm, &w, Conv2dParams::unit()).unwrap();
        let grouped = conv2d_grouped(&ifm, &w, Conv2dParams::unit(), 1).unwrap();
        assert_eq!(dense, grouped);
    }

    #[test]
    fn depthwise_convolves_channels_independently() {
        // groups == IC == OC: each output channel sees only its own input.
        let ifm = gen::random3::<i64>(3, 5, 5, 21);
        let w = gen::random4::<i64>(3, 1, 3, 3, 22);
        let o = conv2d_grouped(&ifm, &w, Conv2dParams::unit(), 3).unwrap();
        // Channel 1 computed in isolation must match.
        let mut one_in = Tensor3::zeros(1, 5, 5);
        for y in 0..5 {
            for x in 0..5 {
                one_in.set(0, y, x, ifm.get(1, y, x));
            }
        }
        let mut one_w = Tensor4::zeros(1, 1, 3, 3);
        for ky in 0..3 {
            for kx in 0..3 {
                one_w.set(0, 0, ky, kx, w.get(1, 0, ky, kx));
            }
        }
        let solo = conv2d_direct(&one_in, &one_w, Conv2dParams::unit()).unwrap();
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(o.get(1, y, x), solo.get(0, y, x));
            }
        }
    }

    #[test]
    fn grouped_rejects_indivisible_channels() {
        let ifm = gen::ramp3::<i32>(3, 5, 5);
        let w = gen::ramp4::<i32>(4, 1, 3, 3);
        assert!(conv2d_grouped(&ifm, &w, Conv2dParams::unit(), 2).is_err());
    }

    #[test]
    fn channel_mismatch_is_rejected() {
        let ifm = gen::ramp3::<i32>(3, 5, 5);
        let w = gen::ramp4::<i32>(2, 4, 3, 3);
        assert!(conv2d_direct(&ifm, &w, Conv2dParams::unit()).is_err());
        assert!(conv2d_im2col(&ifm, &w, Conv2dParams::unit()).is_err());
    }
}
