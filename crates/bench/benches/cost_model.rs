//! Criterion microbenches of the closed-form cost equations.

use criterion::{criterion_group, criterion_main, Criterion};
use pim_arch::PimArray;
use pim_cost::model;
use pim_cost::window::{Candidates, ParallelWindow};
use pim_nets::ConvLayer;
use std::hint::black_box;

fn bench_cost_functions(c: &mut Criterion) {
    let array = PimArray::new(512, 512).unwrap();
    let layer = ConvLayer::square("c", 56, 3, 128, 256).unwrap();
    let pw = ParallelWindow::new(4, 3).unwrap();

    c.bench_function("cost/vw_cost_single_window", |b| {
        b.iter(|| model::vw_cost(black_box(&layer), array, black_box(pw)))
    });
    c.bench_function("cost/im2col", |b| {
        b.iter(|| model::im2col_cost(black_box(&layer), array))
    });
    c.bench_function("cost/sdk_rule", |b| {
        b.iter(|| model::sdk_cost(black_box(&layer), array))
    });
    c.bench_function("cost/smd", |b| {
        b.iter(|| model::smd_cost(black_box(&layer), array))
    });
}

fn bench_candidate_enumeration(c: &mut Criterion) {
    let layer = ConvLayer::square("c", 224, 3, 64, 64).unwrap();
    c.bench_function("cost/candidates_224x224", |b| {
        b.iter(|| Candidates::for_layer(black_box(&layer)).count())
    });
}

criterion_group!(benches, bench_cost_functions, bench_candidate_enumeration);
criterion_main!(benches);
