//! Criterion benches of the Algorithm 1 window search (the paper's
//! offline cost) and full-network planning, plus the cached-vs-uncached
//! comparison of the `PlanningEngine` on the paper's network pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_arch::PimArray;
use pim_cost::search::{optimal_window_with, SearchOptions};
use pim_nets::{zoo, ConvLayer};
use std::hint::black_box;
use vw_sdk::{Planner, PlanningEngine};

fn bench_layer_search(c: &mut Criterion) {
    let array = PimArray::new(512, 512).unwrap();
    let mut group = c.benchmark_group("algorithm1_search");
    let layers = [
        (
            "resnet_stem_112x7",
            ConvLayer::square("s", 112, 7, 3, 64).unwrap(),
        ),
        (
            "vgg_conv2_224x3",
            ConvLayer::square("c", 224, 3, 64, 64).unwrap(),
        ),
        (
            "vgg_conv5_56x3",
            ConvLayer::square("c", 56, 3, 128, 256).unwrap(),
        ),
        ("deep_7x3", ConvLayer::square("c", 7, 3, 512, 512).unwrap()),
    ];
    for (name, layer) in &layers {
        group.bench_with_input(BenchmarkId::new("full", name), layer, |b, l| {
            b.iter(|| optimal_window_with(black_box(l), array, SearchOptions::paper()))
        });
        group.bench_with_input(BenchmarkId::new("pruned", name), layer, |b, l| {
            b.iter(|| optimal_window_with(black_box(l), array, SearchOptions::pruned()))
        });
    }
    group.finish();
}

fn bench_network_planning(c: &mut Criterion) {
    let planner = Planner::new(PimArray::new(512, 512).unwrap());
    let vgg = zoo::vgg13();
    let resnet = zoo::resnet18_table1();
    c.bench_function("plan_network/vgg13", |b| {
        b.iter(|| planner.plan_network(black_box(&vgg)).unwrap())
    });
    c.bench_function("plan_network/resnet18", |b| {
        b.iter(|| planner.plan_network(black_box(&resnet)).unwrap())
    });
}

/// The headline engine bench: planning the paper's VGG-13 + ResNet-18
/// pair across the Fig. 8(b) array sizes, uncached (a fresh sequential
/// `Planner` per report, as the seed tree did) versus through one warm,
/// memoized `PlanningEngine`. The cached path must win — every layer
/// shape resolves to a hash lookup plus a plan rebind.
fn bench_sweep_cached_vs_uncached(c: &mut Criterion) {
    let networks = [zoo::vgg13(), zoo::resnet18_table1()];
    let arrays: Vec<PimArray> = [128usize, 256, 512, 1024]
        .into_iter()
        .map(|n| PimArray::new(n, n).unwrap())
        .collect();

    let mut group = c.benchmark_group("paper_pair_sweep");
    group.bench_function("uncached_sequential", |b| {
        b.iter(|| {
            let mut reports = Vec::new();
            for network in &networks {
                for &array in &arrays {
                    let planner = Planner::new(array);
                    reports.push(planner.plan_network(black_box(network)).unwrap());
                }
            }
            reports
        })
    });

    let warm = PlanningEngine::new();
    warm.sweep_arrays(&networks, &arrays).unwrap();
    group.bench_function("cached_engine", |b| {
        b.iter(|| warm.sweep_arrays(black_box(&networks), &arrays).unwrap())
    });

    let parallel = PlanningEngine::new().with_jobs(0);
    parallel.sweep_arrays(&networks, &arrays).unwrap();
    group.bench_function("cached_engine_parallel", |b| {
        b.iter(|| {
            parallel
                .sweep_arrays(black_box(&networks), &arrays)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_layer_search,
    bench_network_planning,
    bench_sweep_cached_vs_uncached
);
criterion_main!(benches);
