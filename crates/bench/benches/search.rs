//! Criterion benches of the Algorithm 1 window search (the paper's
//! offline cost) and full-network planning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_arch::PimArray;
use pim_cost::search::{optimal_window_with, SearchOptions};
use pim_nets::{zoo, ConvLayer};
use std::hint::black_box;
use vw_sdk::Planner;

fn bench_layer_search(c: &mut Criterion) {
    let array = PimArray::new(512, 512).unwrap();
    let mut group = c.benchmark_group("algorithm1_search");
    let layers = [
        ("resnet_stem_112x7", ConvLayer::square("s", 112, 7, 3, 64).unwrap()),
        ("vgg_conv2_224x3", ConvLayer::square("c", 224, 3, 64, 64).unwrap()),
        ("vgg_conv5_56x3", ConvLayer::square("c", 56, 3, 128, 256).unwrap()),
        ("deep_7x3", ConvLayer::square("c", 7, 3, 512, 512).unwrap()),
    ];
    for (name, layer) in &layers {
        group.bench_with_input(BenchmarkId::new("full", name), layer, |b, l| {
            b.iter(|| optimal_window_with(black_box(l), array, SearchOptions::paper()))
        });
        group.bench_with_input(BenchmarkId::new("pruned", name), layer, |b, l| {
            b.iter(|| optimal_window_with(black_box(l), array, SearchOptions::pruned()))
        });
    }
    group.finish();
}

fn bench_network_planning(c: &mut Criterion) {
    let planner = Planner::new(PimArray::new(512, 512).unwrap());
    let vgg = zoo::vgg13();
    let resnet = zoo::resnet18_table1();
    c.bench_function("plan_network/vgg13", |b| {
        b.iter(|| planner.plan_network(black_box(&vgg)).unwrap())
    });
    c.bench_function("plan_network/resnet18", |b| {
        b.iter(|| planner.plan_network(black_box(&resnet)).unwrap())
    });
}

criterion_group!(benches, bench_layer_search, bench_network_planning);
criterion_main!(benches);
