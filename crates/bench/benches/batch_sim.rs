//! Criterion bench of the batched network executor: MACs/s at batch
//! sizes 1, 8 and 64 on one programmed deployment.
//!
//! Batch 1 is the sequential baseline — what N independent
//! single-input simulations cost per image — so the per-iteration time
//! divided by the batch size read across the group *is* the
//! amortization trajectory. The small lenet5 workload keeps criterion's
//! repeated sampling affordable; the CI-tracked trajectory on the
//! paper's vgg13-sim workload comes from `vwsdk bench sim`
//! (`vw_sdk_bench::simbench`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_arch::PimArray;
use std::hint::black_box;
use vw_sdk_bench::simbench::{PreparedSim, SimBenchOptions};

const BATCHES: [usize; 3] = [1, 8, 64];

fn bench_batched_execution(c: &mut Criterion) {
    let options = SimBenchOptions {
        network: "lenet5".to_string(),
        array: PimArray::new(96, 64).expect("positive dimensions"),
        ..SimBenchOptions::default()
    };
    let prepared = PreparedSim::<i64>::new(&options, *BATCHES.last().expect("non-empty"))
        .expect("lenet5 prepares");

    let mut group = c.benchmark_group("batch_sim");
    for batch in BATCHES {
        group.bench_with_input(
            BenchmarkId::new("execute_batch", batch),
            &batch,
            |b, &batch| b.iter(|| prepared.execute(black_box(batch))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batched_execution);
criterion_main!(benches);
