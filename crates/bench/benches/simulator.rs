//! Criterion benches of the functional crossbar simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_arch::PimArray;
use pim_mapping::MappingAlgorithm;
use pim_nets::ConvLayer;
use pim_sim::Engine;
use pim_tensor::gen;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let layer = ConvLayer::square("c", 12, 3, 4, 8).unwrap();
    let array = PimArray::new(64, 64).unwrap();
    let ifm = gen::random3::<i64>(4, 12, 12, 1);
    let weights = gen::random4::<i64>(8, 4, 3, 3, 2);
    let engine = Engine::new();

    let mut group = c.benchmark_group("simulator");
    for alg in [
        MappingAlgorithm::Im2col,
        MappingAlgorithm::Sdk,
        MappingAlgorithm::VwSdk,
        MappingAlgorithm::Smd,
    ] {
        let plan = alg.plan(&layer, array).unwrap();
        group.bench_with_input(BenchmarkId::new("run", alg.label()), &plan, |b, p| {
            b.iter(|| engine.run(black_box(p), &ifm, &weights).unwrap())
        });
    }
    group.finish();
}

fn bench_layout_generation(c: &mut Criterion) {
    let layer = ConvLayer::square("c", 56, 3, 128, 256).unwrap();
    let array = PimArray::new(512, 512).unwrap();
    let plan = MappingAlgorithm::VwSdk.plan(&layer, array).unwrap();
    c.bench_function("layout/vgg13_conv5_tile", |b| {
        b.iter(|| pim_mapping::layout::TileLayout::build(black_box(&plan), 0, 0).unwrap())
    });
    c.bench_function("layout/utilization_vgg13_conv5", |b| {
        b.iter(|| pim_mapping::utilization::utilization(black_box(&plan)).unwrap())
    });
}

criterion_group!(benches, bench_engine, bench_layout_generation);
criterion_main!(benches);
