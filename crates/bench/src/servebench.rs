//! Loopback serving throughput plus the telemetry-overhead gate.
//!
//! Two measurements share one report:
//!
//! 1. **Serve smoke**: an in-process [`PlanServer`] on an ephemeral
//!    loopback port, hammered by client threads posting `/v1/plan`
//!    bodies. RPS comes from wall time; p50/p90/p99 come from the
//!    **delta** of the server's own `pim_request_seconds` histogram
//!    between two registry snapshots, so the bench exercises the same
//!    telemetry a Prometheus scrape would read.
//! 2. **Overhead gate**: telemetry must be observation-only in cost,
//!    not just in bytes. A fully cached `vwsdk sweep` workload is timed
//!    with the registry enabled and stubbed
//!    ([`pim_telemetry::set_enabled`]); `--check` fails when the
//!    enabled run is ≥ 2% slower.
//!
//! Consumed by `vwsdk bench serve --emit BENCH_serve.json`, which CI
//! tracks. The overhead measurement flips the **process-global**
//! telemetry switch, so [`run`] must not race other recording — the
//! CLI binary satisfies that trivially; tests use a dedicated
//! integration binary.

use pim_arch::PimArray;
use pim_nets::zoo;
use pim_telemetry::HistogramSample;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;
use vw_sdk::PlanningEngine;
use vw_sdk_serve::PlanServer;

/// Maximum enabled-vs-stubbed slowdown the `--check` gate accepts, in
/// percent.
pub const OVERHEAD_GATE_PCT: f64 = 2.0;

/// What to measure; [`ServeBenchOptions::default`] is the CI smoke
/// configuration (tiny network on 256×256, 200 requests over 4 client
/// threads).
#[derive(Debug, Clone)]
pub struct ServeBenchOptions {
    /// Total `POST /v1/plan` requests across all client threads.
    pub requests: usize,
    /// Client threads issuing them (also the server's worker count).
    pub concurrency: usize,
    /// Zoo network named in every plan body.
    pub network: String,
    /// Array geometry (`RxC`) named in every plan body.
    pub array: String,
    /// Quick mode: fewer overhead samples (CI smoke); otherwise
    /// best-of-five.
    pub quick: bool,
    /// Reuse one connection per client thread (HTTP keep-alive)
    /// instead of a fresh connection per request.
    pub keep_alive: bool,
    /// Extra concurrency levels to measure after the main phase
    /// (empty = no sweep). Each level reruns the same request count.
    pub sweep: Vec<usize>,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        Self {
            requests: 200,
            concurrency: 4,
            network: "tiny".to_string(),
            array: "256x256".to_string(),
            quick: false,
            keep_alive: false,
            sweep: Vec::new(),
        }
    }
}

/// The enabled-vs-stubbed timing of the cached-sweep workload.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadProbe {
    /// Cached `sweep_arrays` calls per timed block.
    pub iterations: usize,
    /// Interleaved (enabled, stubbed) block pairs measured.
    pub pairs: usize,
    /// Total seconds across all blocks with the registry recording.
    pub enabled_seconds: f64,
    /// Total seconds across all blocks with the registry stubbed.
    pub disabled_seconds: f64,
    /// Median per-pair enabled-over-stubbed slowdown, in percent;
    /// negative when enabled happened to be faster (timing noise).
    pub overhead_pct: f64,
}

/// Median enabled-over-stubbed slowdown in percent from per-pair block
/// timings. Each pair's two blocks are adjacent in time, so slow drift
/// (thermal/frequency scaling, noisy neighbours) cancels within the
/// pair, and the median discards pairs a scheduler hiccup landed on.
fn overhead_pct_from_pairs(timed_pairs: &[(f64, f64)]) -> f64 {
    let mut ratios: Vec<f64> = timed_pairs
        .iter()
        .filter(|(_, disabled)| *disabled > 0.0)
        .map(|(enabled, disabled)| enabled / disabled)
        .collect();
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let mid = ratios.len() / 2;
    let median = if ratios.len() % 2 == 1 {
        ratios[mid]
    } else {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    };
    (median - 1.0) * 100.0
}

/// One concurrency level of the sweep phase.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Client threads at this level.
    pub concurrency: usize,
    /// Responses with a 2xx status.
    pub ok: u64,
    /// Everything else, including connection failures.
    pub errors: u64,
    /// Wall-clock seconds of the level.
    pub seconds: f64,
    /// Requests per second over the wall clock.
    pub rps: f64,
}

/// The measured smoke run plus the configuration that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchReport {
    /// Requests attempted.
    pub requests: usize,
    /// Client threads used.
    pub concurrency: usize,
    /// Network in the plan body.
    pub network: String,
    /// Array geometry in the plan body.
    pub array: String,
    /// Whether quick (fewer-sample) timing was used.
    pub quick: bool,
    /// Whether clients reused connections (HTTP keep-alive).
    pub keep_alive: bool,
    /// Responses with a 2xx status.
    pub ok: u64,
    /// Responses with any other status, plus connection failures.
    pub errors: u64,
    /// `pim_sheds_total` delta across the run (503s from a full queue).
    pub sheds: u64,
    /// Wall-clock seconds of the request phase.
    pub seconds: f64,
    /// Requests per second over the wall clock.
    pub rps: f64,
    /// p50 of `pim_request_seconds{endpoint="/v1/plan"}`, milliseconds.
    pub p50_ms: f64,
    /// p90, milliseconds.
    pub p90_ms: f64,
    /// p99, milliseconds.
    pub p99_ms: f64,
    /// The concurrency sweep, when one was requested.
    pub sweep: Vec<SweepPoint>,
    /// The telemetry-overhead probe.
    pub overhead: OverheadProbe,
}

impl ServeBenchReport {
    /// The `--check` gate: every request answered 2xx, nothing shed,
    /// and the enabled registry within [`OVERHEAD_GATE_PCT`] of stubbed.
    /// Returns the failure descriptions; empty means pass.
    pub fn check_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        if self.ok != self.requests as u64 || self.errors != 0 {
            failures.push(format!(
                "{} of {} requests answered 2xx ({} errors, {} shed)",
                self.ok, self.requests, self.errors, self.sheds
            ));
        }
        let pct = self.overhead.overhead_pct;
        if pct >= OVERHEAD_GATE_PCT {
            failures.push(format!(
                "telemetry overhead {pct:.2}% >= {OVERHEAD_GATE_PCT}% on the cached sweep \
                 (enabled {:.4}s vs stubbed {:.4}s)",
                self.overhead.enabled_seconds, self.overhead.disabled_seconds
            ));
        }
        failures
    }

    /// The `BENCH_serve.json` payload: a flat, machine-diffable record.
    /// Keys are stable; numbers carry enough digits to compare runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"serve-loopback\",\n");
        out.push_str(&format!("  \"network\": \"{}\",\n", self.network));
        out.push_str(&format!("  \"array\": \"{}\",\n", self.array));
        out.push_str(&format!("  \"requests\": {},\n", self.requests));
        out.push_str(&format!("  \"concurrency\": {},\n", self.concurrency));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"keep_alive\": {},\n", self.keep_alive));
        out.push_str(&format!("  \"ok\": {},\n", self.ok));
        out.push_str(&format!("  \"errors\": {},\n", self.errors));
        out.push_str(&format!("  \"sheds\": {},\n", self.sheds));
        out.push_str(&format!("  \"seconds\": {:.6},\n", self.seconds));
        out.push_str(&format!("  \"rps\": {:.1},\n", self.rps));
        out.push_str(&format!(
            "  \"latency_ms\": {{\"p50\": {:.4}, \"p90\": {:.4}, \"p99\": {:.4}}},\n",
            self.p50_ms, self.p90_ms, self.p99_ms
        ));
        if !self.sweep.is_empty() {
            out.push_str("  \"sweep\": [\n");
            for (i, point) in self.sweep.iter().enumerate() {
                let comma = if i + 1 < self.sweep.len() { "," } else { "" };
                out.push_str(&format!(
                    "    {{\"concurrency\": {}, \"ok\": {}, \"errors\": {}, \
                     \"seconds\": {:.6}, \"rps\": {:.1}}}{comma}\n",
                    point.concurrency, point.ok, point.errors, point.seconds, point.rps
                ));
            }
            out.push_str("  ],\n");
        }
        out.push_str(&format!(
            "  \"overhead\": {{\"iterations\": {}, \"pairs\": {}, \"enabled_seconds\": {:.6}, \
             \"disabled_seconds\": {:.6}, \"overhead_pct\": {:.3}}}\n",
            self.overhead.iterations,
            self.overhead.pairs,
            self.overhead.enabled_seconds,
            self.overhead.disabled_seconds,
            self.overhead.overhead_pct
        ));
        out.push_str("}\n");
        out
    }

    /// Human-readable summary.
    pub fn render_text(&self) -> String {
        let mut text = format!(
            "serve loopback: {} x POST /v1/plan ({} on {}, {} client threads, {})\n\
             {} ok, {} errors, {} shed in {:.3}s -> {:.0} req/s\n\
             latency (from pim_request_seconds): p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms\n\
             telemetry overhead on cached sweep: {:+.2}% \
             (enabled {:.4}s vs stubbed {:.4}s, {} iters x {} paired blocks)\n",
            self.requests,
            self.network,
            self.array,
            self.concurrency,
            if self.keep_alive {
                "keep-alive"
            } else {
                "fresh connections"
            },
            self.ok,
            self.errors,
            self.sheds,
            self.seconds,
            self.rps,
            self.p50_ms,
            self.p90_ms,
            self.p99_ms,
            self.overhead.overhead_pct,
            self.overhead.enabled_seconds,
            self.overhead.disabled_seconds,
            self.overhead.iterations,
            self.overhead.pairs,
        );
        for point in &self.sweep {
            text.push_str(&format!(
                "sweep @ {:>3} threads: {} ok, {} errors in {:.3}s -> {:.0} req/s\n",
                point.concurrency, point.ok, point.errors, point.seconds, point.rps
            ));
        }
        text
    }
}

/// Counter value of `(name, labels)` in a snapshot, 0 when absent.
fn counter_value(snap: &pim_telemetry::Snapshot, name: &str, labels: &[(&str, &str)]) -> u64 {
    snap.counters
        .iter()
        .find(|c| {
            c.name == name
                && c.labels.len() == labels.len()
                && labels
                    .iter()
                    .all(|(k, v)| c.labels.iter().any(|(ck, cv)| ck == k && cv == v))
        })
        .map_or(0, |c| c.value)
}

/// The histogram series `(name, labels)` in a snapshot, if present.
fn find_histogram<'a>(
    snap: &'a pim_telemetry::Snapshot,
    name: &str,
    labels: &[(&str, &str)],
) -> Option<&'a HistogramSample> {
    snap.histograms.iter().find(|h| {
        h.name == name
            && h.labels.len() == labels.len()
            && labels
                .iter()
                .all(|(k, v)| h.labels.iter().any(|(hk, hv)| hk == k && hv == v))
    })
}

/// Subtracts a baseline snapshot from a later one for one histogram
/// series, yielding the distribution of only the observations in
/// between. A missing baseline series means the later counts stand
/// alone; a missing later series means nothing was observed.
fn delta_histogram(
    before: &pim_telemetry::Snapshot,
    after: &pim_telemetry::Snapshot,
    name: &str,
    labels: &[(&str, &str)],
) -> Option<HistogramSample> {
    let late = find_histogram(after, name, labels)?;
    let mut delta = late.clone();
    if let Some(early) = find_histogram(before, name, labels) {
        for (slot, base) in delta.counts.iter_mut().zip(&early.counts) {
            *slot = slot.saturating_sub(*base);
        }
        delta.count = delta.count.saturating_sub(early.count);
        delta.sum -= early.sum;
    }
    Some(delta)
}

/// One `POST /v1/plan` over a fresh `connection: close` connection;
/// returns the status, or `None` when the connection itself failed.
fn post_plan(addr: SocketAddr, body: &str) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let raw = format!(
        "POST /v1/plan HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\
         content-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    response.split(' ').nth(1)?.parse().ok()
}

/// A persistent keep-alive connection: requests reuse the socket and
/// responses are consumed by their `content-length` framing.
struct KeepAliveConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAliveConn {
    fn connect(addr: SocketAddr) -> Option<Self> {
        Some(Self {
            stream: TcpStream::connect(addr).ok()?,
            buf: Vec::new(),
        })
    }

    /// One `POST /v1/plan`; returns the status, or `None` when the
    /// connection died (the caller reconnects).
    fn post_plan(&mut self, body: &str) -> Option<u16> {
        let raw = format!(
            "POST /v1/plan HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(raw.as_bytes()).ok()?;
        let mut chunk = [0u8; 16 * 1024];
        let header_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = self.stream.read(&mut chunk).ok()?;
            if n == 0 {
                return None;
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.buf[..header_end]).ok()?;
        let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
        let length: usize = head.lines().find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })?;
        while self.buf.len() < header_end + length {
            let n = self.stream.read(&mut chunk).ok()?;
            if n == 0 {
                return None;
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        self.buf.drain(..header_end + length);
        Some(status)
    }
}

/// Fires `requests` `POST /v1/plan` bodies from `concurrency` client
/// threads and returns `(ok, errors, wall seconds)`. With `keep_alive`
/// each thread holds one connection for its whole share, reconnecting
/// only if the server drops it; otherwise every request is a fresh
/// `connection: close` exchange.
fn blast(
    addr: SocketAddr,
    body: &str,
    requests: usize,
    concurrency: usize,
    keep_alive: bool,
) -> (u64, u64, f64) {
    let started = Instant::now();
    let mut ok = 0u64;
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..concurrency)
            .map(|thread| {
                // Distribute the remainder across the first threads.
                let share = requests / concurrency + usize::from(thread < requests % concurrency);
                scope.spawn(move || {
                    let mut ok = 0u64;
                    let mut errors = 0u64;
                    let mut conn: Option<KeepAliveConn> = None;
                    for _ in 0..share {
                        let status = if keep_alive {
                            let alive = match conn.take().or_else(|| KeepAliveConn::connect(addr)) {
                                Some(c) => conn.insert(c),
                                None => {
                                    errors += 1;
                                    continue;
                                }
                            };
                            match alive.post_plan(body) {
                                Some(status) => Some(status),
                                None => {
                                    conn = None; // reconnect next round
                                    None
                                }
                            }
                        } else {
                            post_plan(addr, body)
                        };
                        match status {
                            Some(status) if (200..300).contains(&status) => ok += 1,
                            _ => errors += 1,
                        }
                    }
                    (ok, errors)
                })
            })
            .collect();
        for worker in workers {
            let (o, e) = worker.join().expect("bench client thread panicked");
            ok += o;
            errors += e;
        }
    });
    (ok, errors, started.elapsed().as_secs_f64().max(1e-9))
}

/// Times the cached-sweep workload with the registry enabled vs
/// stubbed. The two conditions run as many short interleaved blocks
/// whose order flips every pair, and the median of the per-pair
/// enabled/stubbed ratios is the estimate: slow clock drift
/// (thermal/frequency scaling) hits both halves of a pair equally and
/// cancels, and the median discards pairs a scheduler burst landed in —
/// a paired design measures a sub-percent difference where independent
/// min-of-N cannot. The whole probe runs twice and the quieter round is
/// reported: a noise burst inflates one round, a real regression
/// inflates both. Leaves telemetry enabled.
pub fn measure_overhead(quick: bool) -> Result<OverheadProbe, String> {
    let networks =
        vec![zoo::by_name("vgg13").ok_or_else(|| "zoo network vgg13 missing".to_string())?];
    let arrays = vec![
        PimArray::new(256, 256).map_err(|e| e.to_string())?,
        PimArray::new(512, 512).map_err(|e| e.to_string())?,
    ];
    let engine = PlanningEngine::new().with_jobs(1);
    // Warm every (shape, array) pair so the timed region is pure cache
    // hits — the workload named by the gate.
    engine
        .sweep_arrays(&networks, &arrays)
        .map_err(|e| e.to_string())?;

    // Calibrate each block to a fixed wall-time budget.
    let calibration_started = Instant::now();
    for _ in 0..5 {
        engine
            .sweep_arrays(&networks, &arrays)
            .map_err(|e| e.to_string())?;
    }
    let per_iteration = (calibration_started.elapsed().as_secs_f64() / 5.0).max(1e-7);
    let block_budget = if quick { 0.008 } else { 0.010 };
    let iterations = ((block_budget / per_iteration).ceil() as usize).clamp(10, 2_000);
    let pairs = if quick { 41 } else { 61 };
    let mut rounds: Vec<OverheadProbe> = Vec::with_capacity(2);
    for _ in 0..2 {
        let mut timed_pairs = Vec::with_capacity(pairs);
        for pair in 0..pairs {
            // Flip the within-pair order so even linear drift cancels.
            let order = if pair % 2 == 0 {
                [false, true]
            } else {
                [true, false]
            };
            let mut enabled_block = 0.0f64;
            let mut disabled_block = 0.0f64;
            for &enabled in &order {
                pim_telemetry::set_enabled(enabled);
                let started = Instant::now();
                for _ in 0..iterations {
                    engine
                        .sweep_arrays(&networks, &arrays)
                        .map_err(|e| e.to_string())?;
                }
                let elapsed = started.elapsed().as_secs_f64();
                if enabled {
                    enabled_block = elapsed;
                } else {
                    disabled_block = elapsed;
                }
            }
            timed_pairs.push((enabled_block, disabled_block));
        }
        rounds.push(OverheadProbe {
            iterations,
            pairs,
            enabled_seconds: timed_pairs.iter().map(|(e, _)| e).sum(),
            disabled_seconds: timed_pairs.iter().map(|(_, d)| d).sum(),
            overhead_pct: overhead_pct_from_pairs(&timed_pairs),
        });
    }
    pim_telemetry::set_enabled(true);
    rounds
        .into_iter()
        .min_by(|a, b| {
            a.overhead_pct
                .partial_cmp(&b.overhead_pct)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .ok_or_else(|| "overhead probe produced no rounds".to_string())
}

/// Runs the loopback smoke plus the overhead probe.
///
/// # Errors
///
/// Returns a message when the server cannot bind, the request workload
/// is empty, or the overhead workload cannot plan.
pub fn run(options: &ServeBenchOptions) -> Result<ServeBenchReport, String> {
    if options.requests == 0 || options.concurrency == 0 {
        return Err("serve bench needs at least one request and one thread".to_string());
    }
    let server = PlanServer::bind("127.0.0.1:0", options.concurrency)
        .map_err(|e| format!("cannot bind loopback: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.spawn();

    let body = format!(
        "{{\"network\": \"{}\", \"array\": \"{}\"}}",
        options.network, options.array
    );
    // One untimed request surfaces config errors (unknown network) and
    // warms the plan cache before the clock starts.
    match post_plan(addr, &body) {
        Some(200) => {}
        Some(status) => {
            handle.shutdown();
            return Err(format!(
                "warm-up POST /v1/plan answered {status} for {body} — fix the bench config"
            ));
        }
        None => {
            handle.shutdown();
            return Err("warm-up POST /v1/plan could not connect".to_string());
        }
    }

    let before = pim_telemetry::global().snapshot();
    let (ok, errors, seconds) = blast(
        addr,
        &body,
        options.requests,
        options.concurrency,
        options.keep_alive,
    );
    let after = pim_telemetry::global().snapshot();

    // The sweep reuses the warmed server: each extra concurrency level
    // refires the same request count.
    let mut sweep = Vec::with_capacity(options.sweep.len());
    for &level in &options.sweep {
        if level == 0 {
            handle.shutdown();
            return Err("sweep concurrency levels must be positive".to_string());
        }
        let (ok, errors, seconds) = blast(addr, &body, options.requests, level, options.keep_alive);
        sweep.push(SweepPoint {
            concurrency: level,
            ok,
            errors,
            seconds,
            rps: ok as f64 / seconds,
        });
    }
    handle.shutdown();

    let plan_labels: &[(&str, &str)] = &[("endpoint", "/v1/plan")];
    let latency = delta_histogram(&before, &after, "pim_request_seconds", plan_labels);
    let quantile_ms = |q: f64| latency.as_ref().map_or(0.0, |h| h.quantile(q) * 1000.0);
    let sheds = counter_value(&after, "pim_sheds_total", &[]).saturating_sub(counter_value(
        &before,
        "pim_sheds_total",
        &[],
    ));

    let overhead = measure_overhead(options.quick)?;
    Ok(ServeBenchReport {
        requests: options.requests,
        concurrency: options.concurrency,
        network: options.network.clone(),
        array: options.array.clone(),
        quick: options.quick,
        keep_alive: options.keep_alive,
        ok,
        errors,
        sheds,
        seconds,
        rps: ok as f64 / seconds,
        p50_ms: quantile_ms(0.50),
        p90_ms: quantile_ms(0.90),
        p99_ms: quantile_ms(0.99),
        sweep,
        overhead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_telemetry::{Buckets, Registry};

    #[test]
    fn delta_histogram_subtracts_the_baseline() {
        let reg = Registry::new();
        let h = reg.histogram("d_seconds", "h", &[("endpoint", "/x")], Buckets::latency());
        h.observe(0.002);
        let before = reg.snapshot();
        h.observe(0.002);
        h.observe(0.002);
        let after = reg.snapshot();
        let delta =
            delta_histogram(&before, &after, "d_seconds", &[("endpoint", "/x")]).expect("series");
        assert_eq!(delta.count, 2);
        assert!((delta.sum - 0.004).abs() < 1e-12, "sum={}", delta.sum);
        assert_eq!(delta.counts.iter().sum::<u64>(), 2);
        assert!(delta_histogram(&before, &after, "d_seconds", &[]).is_none());
    }

    #[test]
    fn json_and_check_gate_shapes() {
        let report = ServeBenchReport {
            requests: 10,
            concurrency: 2,
            network: "tiny".to_string(),
            array: "256x256".to_string(),
            quick: true,
            keep_alive: true,
            ok: 10,
            errors: 0,
            sheds: 0,
            seconds: 0.5,
            rps: 20.0,
            p50_ms: 1.0,
            p90_ms: 2.0,
            p99_ms: 3.0,
            sweep: vec![SweepPoint {
                concurrency: 8,
                ok: 10,
                errors: 0,
                seconds: 0.25,
                rps: 40.0,
            }],
            overhead: OverheadProbe {
                iterations: 20,
                pairs: 3,
                enabled_seconds: 1.0,
                disabled_seconds: 1.0,
                overhead_pct: 0.0,
            },
        };
        for key in [
            "\"bench\": \"serve-loopback\"",
            "\"rps\": 20.0",
            "\"keep_alive\": true",
            "\"latency_ms\": {\"p50\": 1.0000",
            "{\"concurrency\": 8, \"ok\": 10, \"errors\": 0, \"seconds\": 0.250000, \"rps\": 40.0}",
            "\"overhead_pct\": 0.000",
        ] {
            assert!(
                report.to_json().contains(key),
                "missing {key} in {}",
                report.to_json()
            );
        }
        assert!(report.check_failures().is_empty());
        assert!(report.render_text().contains("p99 3.00ms"));

        let mut failing = report.clone();
        failing.errors = 1;
        failing.ok = 9;
        failing.overhead.overhead_pct = 5.0;
        let failures = failing.check_failures();
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[1].contains("overhead"), "{failures:?}");
    }

    #[test]
    fn overhead_median_is_robust_to_outlier_pairs() {
        // Nine clean pairs at +1%, two where the scheduler preempted the
        // enabled block: the median stays at the clean estimate.
        let mut pairs = vec![(1.01, 1.0); 9];
        pairs.push((3.0, 1.0));
        pairs.push((2.5, 1.0));
        let pct = overhead_pct_from_pairs(&pairs);
        assert!((pct - 1.0).abs() < 1e-9, "pct={pct}");
        // Degenerate inputs answer 0 instead of dividing by zero.
        assert_eq!(overhead_pct_from_pairs(&[]), 0.0);
        assert_eq!(overhead_pct_from_pairs(&[(1.0, 0.0)]), 0.0);
        // Even pair counts average the middle two ratios.
        let pct = overhead_pct_from_pairs(&[(1.02, 1.0), (1.04, 1.0)]);
        assert!((pct - 3.0).abs() < 1e-9, "pct={pct}");
    }

    #[test]
    fn empty_workloads_are_rejected() {
        let mut options = ServeBenchOptions {
            requests: 0,
            ..ServeBenchOptions::default()
        };
        assert!(run(&options).is_err());
        options.requests = 1;
        options.concurrency = 0;
        assert!(run(&options).is_err());
    }
}
