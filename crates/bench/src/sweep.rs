//! Extension A4: the full zoo × array-size sweep, run through the
//! parallel, memoized [`PlanningEngine`].

use pim_arch::presets;
use pim_mapping::MappingAlgorithm;
use pim_nets::zoo;
use pim_report::fmt_speedup;
use pim_report::table::{Align, TextTable};
use vw_sdk::PlanningEngine;

/// One sweep cell: network × array → total cycles per algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Network name.
    pub network: String,
    /// Array label.
    pub array: String,
    /// Total cycles under im2col.
    pub im2col: u64,
    /// Total cycles under SDK.
    pub sdk: u64,
    /// Total cycles under VW-SDK.
    pub vw: u64,
}

/// Runs the sweep over every zoo network and every Fig. 8(b) array size
/// on a fresh engine with one worker per core.
pub fn run() -> Vec<SweepCell> {
    run_with(&PlanningEngine::new().with_jobs(0))
}

/// Runs the sweep through an existing engine (sharing its plan cache —
/// repeated shapes across networks and re-runs become hash lookups).
pub fn run_with(engine: &PlanningEngine) -> Vec<SweepCell> {
    let networks = zoo::all();
    let arrays: Vec<_> = presets::fig8b_sweep()
        .iter()
        .map(|preset| preset.array)
        .collect();
    let reports = engine
        .sweep_arrays(&networks, &arrays)
        .expect("planning is total");
    let mut cells: Vec<SweepCell> = reports
        .iter()
        .map(|report| SweepCell {
            network: report.network_name().to_string(),
            array: report.array().to_string(),
            im2col: report
                .total_cycles(MappingAlgorithm::Im2col)
                .expect("configured"),
            sdk: report
                .total_cycles(MappingAlgorithm::Sdk)
                .expect("configured"),
            vw: report
                .total_cycles(MappingAlgorithm::VwSdk)
                .expect("configured"),
        })
        .collect();
    cells.sort_by(|a, b| (&a.network, &a.array).cmp(&(&b.network, &b.array)));
    cells
}

/// The full printable sweep report.
pub fn report() -> String {
    let engine = PlanningEngine::new().with_jobs(0);
    let mut out = String::from("== A4: zoo-wide sweep (total cycles and VW-SDK speedup) ==\n\n");
    let mut table = TextTable::new(&[
        "network",
        "array",
        "im2col",
        "SDK",
        "VW-SDK",
        "VW vs im2col",
        "VW vs SDK",
    ]);
    for c in 2..7 {
        table.align(c, Align::Right);
    }
    for cell in run_with(&engine) {
        table.add_row(&[
            cell.network.clone(),
            cell.array.clone(),
            cell.im2col.to_string(),
            cell.sdk.to_string(),
            cell.vw.to_string(),
            fmt_speedup(cell.im2col as f64 / cell.vw as f64),
            fmt_speedup(cell.sdk as f64 / cell.vw as f64),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!("\nplanning cache: {}\n", engine.stats()));
    out.push_str(
        "\nNetworks beyond the paper's pair (VGG-16, AlexNet, LeNet-5,\n\
         MobileNet-like with depthwise groups, dilated-context with\n\
         atrous kernels, full ResNet-18 with strides) exercise the\n\
         generalized cost model.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_network_and_array() {
        let cells = run();
        assert_eq!(cells.len(), zoo::all().len() * 5);
    }

    #[test]
    fn paper_cells_match_table1() {
        let cells = run();
        let cell = cells
            .iter()
            .find(|c| c.network == "ResNet-18" && c.array == "512x512")
            .unwrap();
        assert_eq!(cell.im2col, 20_041);
        assert_eq!(cell.sdk, 7_240);
        assert_eq!(cell.vw, 4_294);
    }

    #[test]
    fn vw_never_loses_to_im2col_anywhere() {
        for cell in run() {
            assert!(
                cell.vw <= cell.im2col,
                "{} on {}: VW {} > im2col {}",
                cell.network,
                cell.array,
                cell.vw,
                cell.im2col
            );
        }
    }

    #[test]
    fn parallel_run_is_deterministic() {
        assert_eq!(run(), run());
    }

    #[test]
    fn warm_engine_rerun_is_pure_cache_and_identical() {
        let engine = PlanningEngine::new().with_jobs(0);
        let cold = run_with(&engine);
        let misses_after_cold = engine.stats().plan_misses;
        let warm = run_with(&engine);
        assert_eq!(cold, warm);
        // The second sweep computed nothing new.
        assert_eq!(engine.stats().plan_misses, misses_after_cold);
        assert!(engine.stats().plan_hits >= misses_after_cold);
    }
}
