//! Fig. 9: eq. (9) array utilization — (a) per VGG-13 layer on 512×512;
//! (b) layers 4/5 across array sizes.
//!
//! Both the nonzero-cell and bounding-rectangle interpretations are
//! reported, as mean (eq. (9) as written) and peak (the paper's "up to
//! 73.8 %" phrasing); see docs/EXPERIMENTS.md (F9) for the
//! interpretation discussion.

use crate::array512;
use pim_arch::presets;
use pim_mapping::utilization::utilization;
use pim_mapping::MappingAlgorithm;
use pim_nets::zoo;
use pim_report::fmt_f64;
use pim_report::table::{Align, TextTable};

/// Utilization of one `(layer, algorithm)` pair on one array:
/// `(mean_nonzero, peak_nonzero)` percentages.
pub fn layer_utilization(
    layer_index: usize,
    algorithm: MappingAlgorithm,
    array: pim_arch::PimArray,
) -> (f64, f64) {
    let layer = &zoo::vgg13().layers()[layer_index].clone();
    let plan = algorithm.plan(layer, array).expect("planning is total");
    let stats = utilization(&plan).expect("dense layers lay out");
    (stats.mean_nonzero, stats.peak_nonzero)
}

/// The full printable Fig. 9 reproduction.
pub fn report() -> String {
    let algorithms = MappingAlgorithm::paper_trio();
    let mut out = String::from("== Fig. 9(a): VGG-13 utilization on 512x512 (eq. 9) ==\n\n");
    let mut header = vec!["layer".to_string()];
    for alg in algorithms {
        header.push(format!("{} mean%", alg.label()));
        header.push(format!("{} peak%", alg.label()));
    }
    let mut table = TextTable::new(&header);
    for c in 1..header.len() {
        table.align(c, Align::Right);
    }
    let vgg = zoo::vgg13();
    for (i, layer) in vgg.layers().iter().enumerate().take(6) {
        let mut row = vec![format!("layer{}", i + 1)];
        for alg in algorithms {
            let plan = alg.plan(layer, array512()).expect("planning is total");
            let u = utilization(&plan).expect("dense layers lay out");
            row.push(fmt_f64(u.mean_nonzero, 1));
            row.push(fmt_f64(u.peak_nonzero, 1));
        }
        table.add_row(&row);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper anchor: VW-SDK reaches \"up to 73.8%\" at layer 5 — the\n\
         peak-nonzero column reproduces 73.8 exactly (9*42*512/512^2).\n\n",
    );

    out.push_str("== Fig. 9(b): layers 4 and 5 across array sizes ==\n\n");
    for layer_index in [3usize, 4] {
        let layer = &vgg.layers()[layer_index];
        let mut t = TextTable::new(&["array", "im2col peak%", "SDK peak%", "VW-SDK peak%"]);
        for c in 1..4 {
            t.align(c, Align::Right);
        }
        for preset in presets::fig8b_sweep() {
            let mut row = vec![preset.array.to_string()];
            for alg in algorithms {
                let plan = alg.plan(layer, preset.array).expect("planning is total");
                let u = utilization(&plan).expect("dense layers lay out");
                row.push(fmt_f64(u.peak_nonzero, 1));
            }
            t.add_row(&row);
        }
        out.push_str(&format!(
            "layer {} ({})\n{}\n",
            layer_index + 1,
            layer,
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer5_vw_peak_is_73_8() {
        let (_, peak) = layer_utilization(4, MappingAlgorithm::VwSdk, array512());
        assert!((peak - 73.83).abs() < 0.01, "peak {peak}");
    }

    #[test]
    fn sdk_equals_vw_on_early_layers_only_in_window_shape() {
        // Layers 2-3 share the 4x4 window between SDK and VW-SDK; their
        // peak utilizations are close (VW's channel-granular tiling can
        // differ slightly on the ragged tile).
        let (_, sdk2) = layer_utilization(1, MappingAlgorithm::Sdk, array512());
        let (_, vw2) = layer_utilization(1, MappingAlgorithm::VwSdk, array512());
        assert!((sdk2 - vw2).abs() < 15.0, "sdk {sdk2} vs vw {vw2}");
    }

    #[test]
    fn vw_dominates_after_layer_3() {
        for layer_index in 3..6 {
            let (_, sdk) = layer_utilization(layer_index, MappingAlgorithm::Sdk, array512());
            let (_, vw) = layer_utilization(layer_index, MappingAlgorithm::VwSdk, array512());
            assert!(vw > sdk, "layer {}: vw {vw} <= sdk {sdk}", layer_index + 1);
        }
    }

    #[test]
    fn report_renders_both_panels() {
        let text = report();
        assert!(text.contains("Fig. 9(a)"));
        assert!(text.contains("Fig. 9(b)"));
        assert!(text.contains("73.8"));
    }
}
