//! Extension A6: device-precision sweep.
//!
//! How do bit-sliced cells (multiple columns per weight) and bit-serial
//! DACs (multiple passes per activation) change the picture? The sweep
//! re-runs the window search under each precision configuration — the
//! optimal window can *change*, because column expansion penalizes
//! many-window shapes.

use crate::array512;
use pim_arch::device::{CellDevice, DacSpec};
use pim_cost::precision::{optimal_window_quantized, quantized_im2col_cycles, PrecisionConfig};
use pim_nets::{zoo, Network};
use pim_report::fmt_speedup;
use pim_report::table::{Align, TextTable};

/// Weight precisions swept (bits).
pub const WEIGHT_BITS: [u8; 4] = [1, 2, 4, 8];

/// One sweep row: network totals at one weight precision on 2-bit RRAM
/// cells with 1-bit bit-serial inputs (8-bit activations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecisionRow {
    /// Weight precision in bits.
    pub weight_bits: u8,
    /// Columns per weight after slicing.
    pub cols_per_weight: usize,
    /// Total network cycles under quantized im2col.
    pub im2col: u64,
    /// Total network cycles under quantized VW-SDK.
    pub vw: u64,
}

fn config(weight_bits: u8) -> PrecisionConfig {
    PrecisionConfig {
        weight_bits,
        input_bits: 8,
        cell: CellDevice::rram_2bit(),
        dac: DacSpec::bit_serial(),
    }
}

/// Sweeps one network across [`WEIGHT_BITS`].
pub fn sweep(network: &Network) -> Vec<PrecisionRow> {
    WEIGHT_BITS
        .iter()
        .map(|&bits| {
            let cfg = config(bits);
            let mut im2col = 0;
            let mut vw = 0;
            for layer in network {
                im2col += quantized_im2col_cycles(layer, array512(), cfg);
                vw += optimal_window_quantized(layer, array512(), cfg).0;
            }
            PrecisionRow {
                weight_bits: bits,
                cols_per_weight: cfg.cols_per_weight(),
                im2col,
                vw,
            }
        })
        .collect()
}

/// The full printable precision report.
pub fn report() -> String {
    let mut out = String::from(
        "== A6: precision sweep (512x512, 2-bit RRAM cells, bit-serial 8-bit inputs) ==\n\n",
    );
    for network in [zoo::vgg13(), zoo::resnet18_table1()] {
        let mut table = TextTable::new(&[
            "weight bits",
            "cols/weight",
            "im2col cycles",
            "VW-SDK cycles",
            "VW speedup",
        ]);
        for c in 0..5 {
            table.align(c, Align::Right);
        }
        for row in sweep(&network) {
            table.add_row(&[
                row.weight_bits.to_string(),
                row.cols_per_weight.to_string(),
                row.im2col.to_string(),
                row.vw.to_string(),
                fmt_speedup(row.im2col as f64 / row.vw as f64),
            ]);
        }
        out.push_str(&format!("{}\n{}\n", network.name(), table.render()));
    }
    out.push_str(
        "Reading: bit slicing multiplies column pressure, so VW-SDK's\n\
         advantage shrinks at high weight precision (fewer output\n\
         channels fit beside the duplicated windows) — an effect\n\
         invisible in the paper's full-precision model.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_bit_weights_on_2bit_cells_use_4_columns() {
        let rows = sweep(&zoo::resnet18_table1());
        assert_eq!(rows[3].weight_bits, 8);
        assert_eq!(rows[3].cols_per_weight, 4);
        assert_eq!(rows[0].cols_per_weight, 1);
    }

    #[test]
    fn cycles_grow_with_weight_precision() {
        for network in [zoo::vgg13(), zoo::resnet18_table1()] {
            let rows = sweep(&network);
            for pair in rows.windows(2) {
                assert!(pair[1].im2col >= pair[0].im2col);
                assert!(pair[1].vw >= pair[0].vw);
            }
        }
    }

    #[test]
    fn vw_never_loses_at_any_precision() {
        for network in [zoo::vgg13(), zoo::resnet18_table1()] {
            for row in sweep(&network) {
                assert!(
                    row.vw <= row.im2col,
                    "bits {}: {} > {}",
                    row.weight_bits,
                    row.vw,
                    row.im2col
                );
            }
        }
    }

    #[test]
    fn one_bit_weights_match_ideal_model_shape() {
        // cols_per_weight = 1 at 1-bit weights: the structure matches the
        // paper model except for the 8 bit-serial passes.
        let rows = sweep(&zoo::resnet18_table1());
        assert_eq!(rows[0].vw % 8, 0);
        assert_eq!(rows[0].vw / 8, 4_294);
    }

    #[test]
    fn report_lists_all_precisions() {
        let text = report();
        for bits in WEIGHT_BITS {
            assert!(text.contains(&format!("\n{bits}  ")) || text.contains(&format!(" {bits} ")));
        }
    }
}
