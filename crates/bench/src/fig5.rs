//! Fig. 5: (a) the worked example showing a rectangular window beating
//! both im2col and the square window; (b) speedup of fixed window shapes
//! across IFM sizes.
//!
//! Configuration (paper §III-B): 512×256 array, 3×3 kernel, IC = 42,
//! OC = 96.

use crate::array512x256;
use pim_cost::model;
use pim_cost::window::ParallelWindow;
use pim_nets::ConvLayer;
use pim_report::table::{Align, TextTable};
use pim_report::{chart::BarChart, fmt_f64};

/// IC/OC of the Fig. 5 example layer.
pub const IC: usize = 42;
/// Output channels of the Fig. 5 example layer.
pub const OC: usize = 96;

/// The IFM sizes of Fig. 5(b)'s x-axis (VGG feature-map sizes).
pub const IFM_SIZES: [usize; 12] = [7, 8, 14, 16, 28, 32, 56, 64, 112, 128, 224, 256];

fn example_layer(input: usize) -> ConvLayer {
    ConvLayer::square("fig5", input, 3, IC, OC).expect("valid example dimensions")
}

/// Fig. 5(a): cycle breakdown of im2col, the 4×3 window and the 4×4
/// window on a 4×4 input.
pub fn part_a() -> String {
    let layer = example_layer(4);
    let array = array512x256();
    let mut table = TextTable::new(&["mapping", "N PWs", "AR", "AC", "cycles"]);
    for c in 1..5 {
        table.align(c, Align::Right);
    }
    let im2col = model::im2col_cost(&layer, array);
    table.add_row(&[
        "im2col (3x3)".to_string(),
        im2col.n_windows.to_string(),
        im2col.ar_cycles.to_string(),
        im2col.ac_cycles.to_string(),
        im2col.cycles.to_string(),
    ]);
    for (w, h) in [(4, 3), (4, 4)] {
        let pw = ParallelWindow::new(w, h).expect("positive");
        let cost = model::vw_cost(&layer, array, pw).expect("feasible in the example");
        table.add_row(&[
            format!("VW {w}x{h}"),
            cost.n_parallel_windows.to_string(),
            cost.ar_cycles.to_string(),
            cost.ac_cycles.to_string(),
            cost.cycles.to_string(),
        ]);
    }
    format!(
        "== Fig. 5(a): worked example (512x256 array, 3x3 kernel, IC=42, OC=96, 4x4 IFM) ==\n\n{}",
        table.render()
    )
}

/// One row of Fig. 5(b): speedups of the three fixed windows at one IFM
/// size (relative to im2col at the same size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRow {
    /// IFM side length.
    pub ifm: usize,
    /// Speedup of the 4×4 square window.
    pub s4x4: f64,
    /// Speedup of the 6×3 rectangle.
    pub s6x3: f64,
    /// Speedup of the 4×3 rectangle.
    pub s4x3: f64,
}

/// Computes every row of Fig. 5(b).
pub fn part_b_rows() -> Vec<SweepRow> {
    let array = array512x256();
    IFM_SIZES
        .iter()
        .map(|&ifm| {
            let layer = example_layer(ifm);
            let base = model::im2col_cost(&layer, array).cycles as f64;
            let speed = |w: usize, h: usize| -> f64 {
                let pw = ParallelWindow::new(w, h).expect("positive");
                model::vw_cost(&layer, array, pw)
                    .map(|c| base / c.cycles as f64)
                    .unwrap_or(f64::NAN)
            };
            SweepRow {
                ifm,
                s4x4: speed(4, 4),
                s6x3: speed(6, 3),
                s4x3: speed(4, 3),
            }
        })
        .collect()
}

/// The full printable Fig. 5 reproduction (both panels).
pub fn report() -> String {
    let mut out = part_a();
    out.push_str("\n== Fig. 5(b): speedup vs im2col across IFM sizes ==\n\n");
    let mut table = TextTable::new(&["IFM", "4x4 square", "6x3 rect", "4x3 rect"]);
    for c in 0..4 {
        table.align(c, Align::Right);
    }
    for row in part_b_rows() {
        table.add_row(&[
            row.ifm.to_string(),
            fmt_f64(row.s4x4, 2),
            fmt_f64(row.s6x3, 2),
            fmt_f64(row.s4x3, 2),
        ]);
    }
    out.push_str(&table.render());

    let mut chart = BarChart::new("\n4x3 window speedup by IFM size (chart)");
    for row in part_b_rows() {
        chart.add(row.ifm.to_string(), row.s4x3);
    }
    out.push_str(&chart.render(40));
    out.push_str(
        "\nReading: the 4x3 rectangle sustains ~2x over im2col at every\n\
         IFM size, roughly double the 4x4 square window — the paper's\n\
         motivation for rectangular parallel windows.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_a_matches_paper_cycle_counts() {
        let text = part_a();
        // The paper's Fig. 5(a): 4 / 2 / 4 cycles.
        let lines: Vec<&str> = text.lines().collect();
        let row = |needle: &str| {
            lines
                .iter()
                .find(|l| l.contains(needle))
                .unwrap()
                .to_string()
        };
        assert!(row("im2col").trim_end().ends_with('4'));
        assert!(row("VW 4x3").trim_end().ends_with('2'));
        assert!(row("VW 4x4").trim_end().ends_with('4'));
    }

    #[test]
    fn rectangle_doubles_square_at_vgg_sizes() {
        // The paper highlights ~2x for 4x3 over 4x4.
        for row in part_b_rows() {
            if row.ifm >= 14 {
                let ratio = row.s4x3 / row.s4x4;
                assert!(
                    (1.8..=2.3).contains(&ratio),
                    "IFM {}: 4x3/4x4 ratio {ratio}",
                    row.ifm
                );
            }
        }
    }

    #[test]
    fn speedups_are_positive_and_bounded() {
        for row in part_b_rows() {
            for s in [row.s4x4, row.s6x3, row.s4x3] {
                assert!(s.is_finite() && s > 0.0 && s < 3.0, "IFM {}: {s}", row.ifm);
            }
        }
    }

    #[test]
    fn small_ifm_penalizes_large_windows() {
        let first = part_b_rows()[0]; // IFM 7
        assert!(first.s4x3 > 1.0);
        assert!(
            first.s4x4 < 1.0,
            "4x4 should lose at IFM 7, got {}",
            first.s4x4
        );
    }
}
