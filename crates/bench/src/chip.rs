//! Extension A7: chip-scale deployment and pipelining.
//!
//! How do the mappings compare when the substrate is a many-array chip
//! (the setting of the paper's ref. \[1\], PipeLayer) instead of a single
//! crossbar? The pipeline bottleneck is set by per-stage cycles, where
//! VW-SDK's small `NPW` dominates — even though its channel-granular
//! tiling demands a few more resident weight tiles than im2col.

use pim_arch::{latency::LatencyModel, PimArray};
use pim_chip::allocate::deploy;
use pim_chip::pipeline::PipelineReport;
use pim_chip::ChipConfig;
use pim_mapping::MappingAlgorithm;
use pim_nets::{zoo, Network};
use pim_report::fmt_f64;
use pim_report::table::{Align, TextTable};

/// Chip sizes (number of 512×512 arrays) swept by the experiment.
pub const CHIP_SIZES: [usize; 4] = [16, 32, 64, 128];

/// One experiment row.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipRow {
    /// Number of arrays on the chip.
    pub arrays: usize,
    /// Mapping algorithm.
    pub algorithm: MappingAlgorithm,
    /// Weight tiles demanded by the network.
    pub tiles: u64,
    /// Whether all tiles are resident.
    pub resident: bool,
    /// Single-image latency in cycles.
    pub latency: u64,
    /// Pipeline bottleneck in cycles.
    pub bottleneck: u64,
}

/// Sweeps one network across chip sizes and the paper's algorithms.
pub fn sweep(network: &Network) -> Vec<ChipRow> {
    let mut rows = Vec::new();
    for &n in &CHIP_SIZES {
        let chip =
            ChipConfig::new(n, PimArray::new(512, 512).expect("positive"), 2_000).expect("valid");
        for alg in MappingAlgorithm::paper_trio() {
            let deployment = deploy(network, alg, &chip).expect("chip larger than layer count");
            let report = PipelineReport::new(&deployment);
            rows.push(ChipRow {
                arrays: n,
                algorithm: alg,
                tiles: deployment.tiles_demanded(),
                resident: deployment.is_fully_resident(),
                latency: report.latency_cycles(),
                bottleneck: report.bottleneck_cycles(),
            });
        }
    }
    rows
}

/// The full printable chip report.
pub fn report() -> String {
    let mut out = String::from(
        "== A7: chip-scale pipelined deployment (512x512 arrays, 2000-cycle reload) ==\n\n",
    );
    let latency_model = LatencyModel::isaac_like();
    for network in [zoo::resnet18_table1(), zoo::vgg13()] {
        let mut table = TextTable::new(&[
            "arrays",
            "algorithm",
            "tiles",
            "resident",
            "latency (cyc)",
            "bottleneck",
            "throughput (img/s)",
        ]);
        for c in [0, 2, 4, 5, 6] {
            table.align(c, Align::Right);
        }
        for row in sweep(&network) {
            let ips = latency_model.cycles_per_second() / row.bottleneck as f64;
            table.add_row(&[
                row.arrays.to_string(),
                row.algorithm.label().to_string(),
                row.tiles.to_string(),
                if row.resident { "yes" } else { "no" }.to_string(),
                row.latency.to_string(),
                row.bottleneck.to_string(),
                fmt_f64(ips, 0),
            ]);
        }
        out.push_str(&format!("{}\n{}\n", network.name(), table.render()));
    }
    out.push_str(
        "Reading: VW-SDK's channel-granular tiling demands a few MORE\n\
         weight tiles than im2col (23 vs 20 on ResNet-18), but once\n\
         resident its far smaller per-stage NPW wins the pipeline\n\
         bottleneck by ~8x; on starved chips both mappings pay reload\n\
         penalties and converge.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_expected_shape() {
        let rows = sweep(&zoo::resnet18_table1());
        assert_eq!(rows.len(), CHIP_SIZES.len() * 3);
    }

    #[test]
    fn vw_bottleneck_dominates_im2col_when_resident() {
        let rows = sweep(&zoo::resnet18_table1());
        let at = |arrays: usize, alg: MappingAlgorithm| {
            rows.iter()
                .find(|r| r.arrays == arrays && r.algorithm == alg)
                .unwrap()
                .clone()
        };
        let vw = at(128, MappingAlgorithm::VwSdk);
        let im2col = at(128, MappingAlgorithm::Im2col);
        assert!(vw.resident && im2col.resident);
        assert!(vw.bottleneck < im2col.bottleneck);
    }

    #[test]
    fn residency_improves_with_chip_size() {
        let rows = sweep(&zoo::vgg13());
        for alg in MappingAlgorithm::paper_trio() {
            let series: Vec<bool> = CHIP_SIZES
                .iter()
                .map(|&n| {
                    rows.iter()
                        .find(|r| r.arrays == n && r.algorithm == alg)
                        .unwrap()
                        .resident
                })
                .collect();
            // Once resident, stays resident as the chip grows.
            for pair in series.windows(2) {
                assert!(pair[1] || !pair[0]);
            }
        }
    }

    #[test]
    fn latency_never_grows_with_more_arrays() {
        let rows = sweep(&zoo::vgg13());
        for alg in MappingAlgorithm::paper_trio() {
            let latencies: Vec<u64> = CHIP_SIZES
                .iter()
                .map(|&n| {
                    rows.iter()
                        .find(|r| r.arrays == n && r.algorithm == alg)
                        .unwrap()
                        .latency
                })
                .collect();
            for pair in latencies.windows(2) {
                assert!(pair[1] <= pair[0], "{alg}: {latencies:?}");
            }
        }
    }
}
