//! Regenerates the paper artifact; see `vw_sdk_bench::fig9`.

fn main() {
    print!("{}", vw_sdk_bench::fig9::report());
}
