//! Regenerates the paper artifact; see `vw_sdk_bench::fig7`.

fn main() {
    print!("{}", vw_sdk_bench::fig7::report());
}
