//! Regenerates the paper artifact; see `vw_sdk_bench::fig8`.

fn main() {
    print!("{}", vw_sdk_bench::fig8::report());
}
