//! Regenerates the paper artifact; see `vw_sdk_bench::ablation`.

fn main() {
    print!("{}", vw_sdk_bench::ablation::report());
}
