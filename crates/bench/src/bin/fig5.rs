//! Regenerates the paper artifact; see `vw_sdk_bench::fig5`.

fn main() {
    print!("{}", vw_sdk_bench::fig5::report());
}
