//! Regenerates the paper artifact; see `vw_sdk_bench::chip`.

fn main() {
    print!("{}", vw_sdk_bench::chip::report());
}
