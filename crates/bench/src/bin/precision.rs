//! Regenerates the paper artifact; see `vw_sdk_bench::precision`.

fn main() {
    print!("{}", vw_sdk_bench::precision::report());
}
