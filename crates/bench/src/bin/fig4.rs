//! Regenerates the paper artifact; see `vw_sdk_bench::fig4`.

fn main() {
    print!("{}", vw_sdk_bench::fig4::report());
}
