//! Regenerates the paper artifact; see `vw_sdk_bench::sweep`.

fn main() {
    print!("{}", vw_sdk_bench::sweep::report());
}
