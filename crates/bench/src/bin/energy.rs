//! Regenerates the paper artifact; see `vw_sdk_bench::energy`.

fn main() {
    print!("{}", vw_sdk_bench::energy::report());
}
