//! Regenerates the paper artifact; see `vw_sdk_bench::table1`.

fn main() {
    print!("{}", vw_sdk_bench::table1::report());
}
