//! Table I: per-layer SDK / VW-SDK windows and total cycles for VGG-13 and
//! ResNet-18 on a 512×512 array.

use crate::array512;
use pim_nets::zoo;
use vw_sdk::render::render_table1;
use vw_sdk::{NetworkReport, Planner};

/// Plans both Table I networks with the paper's three algorithms.
pub fn reports() -> Vec<NetworkReport> {
    let planner = Planner::new(array512());
    vec![
        planner
            .plan_network(&zoo::vgg13())
            .expect("planning is total"),
        planner
            .plan_network(&zoo::resnet18_table1())
            .expect("planning is total"),
    ]
}

/// The full printable Table I reproduction.
pub fn report() -> String {
    let mut out = String::from("== Table I: CNN information and mapping results ==\n\n");
    for network in reports() {
        out.push_str(&render_table1(&network));
        out.push('\n');
    }
    out.push_str(
        "Paper reference totals: VGG-13 SDK 114697 / VW-SDK 77102;\n\
         ResNet-18 SDK 7240 / VW-SDK 4294.\n\
         Note: the paper's Table I prints ICt=64 for VGG-13 layer 2 under\n\
         VW-SDK; eq. (4) gives 32 (= floor(512/16)), and only ICt=32 is\n\
         consistent with the printed total of 77102. We report 32.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_mapping::MappingAlgorithm;

    #[test]
    fn totals_match_paper() {
        let reports = reports();
        assert_eq!(
            reports[0].total_cycles(MappingAlgorithm::Sdk),
            Some(114_697)
        );
        assert_eq!(
            reports[0].total_cycles(MappingAlgorithm::VwSdk),
            Some(77_102)
        );
        assert_eq!(reports[1].total_cycles(MappingAlgorithm::Sdk), Some(7_240));
        assert_eq!(
            reports[1].total_cycles(MappingAlgorithm::VwSdk),
            Some(4_294)
        );
    }

    #[test]
    fn vw_descriptors_match_paper_rows() {
        let reports = reports();
        let vgg_expect = [
            "10x3x3x64",
            "4x4x32x64", // paper prints ICt=64 (typo); see report() note
            "4x4x32x128",
            "4x4x32x128",
            "4x3x42x256",
            "4x3x42x256",
            "3x3x256x512",
            "3x3x512x512",
            "3x3x512x512",
            "3x3x512x512",
        ];
        for (cmp, expect) in reports[0].layers().iter().zip(vgg_expect) {
            let plan = cmp.plan_for(MappingAlgorithm::VwSdk).unwrap();
            assert_eq!(plan.descriptor(), expect, "layer {}", cmp.layer().name());
        }
        let resnet_expect = [
            "10x8x3x64",
            "4x4x32x64",
            "4x4x32x128",
            "4x3x42x256",
            "3x3x512x512",
        ];
        for (cmp, expect) in reports[1].layers().iter().zip(resnet_expect) {
            let plan = cmp.plan_for(MappingAlgorithm::VwSdk).unwrap();
            assert_eq!(plan.descriptor(), expect, "layer {}", cmp.layer().name());
        }
    }

    #[test]
    fn sdk_windows_match_paper_rows() {
        let reports = reports();
        let vgg_sdk: Vec<String> = reports[0]
            .layers()
            .iter()
            .map(|c| {
                c.plan_for(MappingAlgorithm::Sdk)
                    .unwrap()
                    .window()
                    .to_string()
            })
            .collect();
        assert_eq!(
            vgg_sdk,
            vec!["4x4", "4x4", "4x4", "3x3", "3x3", "3x3", "3x3", "3x3", "3x3", "3x3"]
        );
        let resnet_sdk: Vec<String> = reports[1]
            .layers()
            .iter()
            .map(|c| {
                c.plan_for(MappingAlgorithm::Sdk)
                    .unwrap()
                    .window()
                    .to_string()
            })
            .collect();
        assert_eq!(resnet_sdk, vec!["8x8", "4x4", "3x3", "3x3", "3x3"]);
    }

    #[test]
    fn report_mentions_the_known_typo() {
        assert!(report().contains("ICt=64"));
    }
}
