//! Ablations A1–A3: which of VW-SDK's two ideas (rectangular windows,
//! channel tiling) buys how much, and what the search pruning saves.

use crate::array512;
use pim_cost::search::SearchOptions;
use pim_mapping::MappingAlgorithm;
use pim_nets::{zoo, Network};
use pim_report::fmt_speedup;
use pim_report::table::{Align, TextTable};
use vw_sdk::PlanningEngine;

/// The algorithm set compared in the ablation table, in presentation
/// order.
pub fn ablation_algorithms() -> [MappingAlgorithm; 7] {
    [
        MappingAlgorithm::Im2col,
        MappingAlgorithm::Smd,
        MappingAlgorithm::Sdk,
        MappingAlgorithm::SdkOpt,
        MappingAlgorithm::VwSdkFullChannel,
        MappingAlgorithm::VwSdkSquare,
        MappingAlgorithm::VwSdk,
    ]
}

/// An engine configured for the ablation comparison, planning with one
/// worker per core.
pub fn ablation_engine() -> PlanningEngine {
    PlanningEngine::with_algorithms(&ablation_algorithms()).with_jobs(0)
}

/// Total cycles of every ablation algorithm on one network (512×512).
pub fn totals(network: &Network) -> Vec<(MappingAlgorithm, u64)> {
    totals_with(&ablation_engine(), network)
}

/// [`totals`] through an existing engine (sharing its plan cache).
pub fn totals_with(engine: &PlanningEngine, network: &Network) -> Vec<(MappingAlgorithm, u64)> {
    let report = engine
        .plan_network(network, array512())
        .expect("planning is total");
    ablation_algorithms()
        .into_iter()
        .map(|alg| (alg, report.total_cycles(alg).expect("configured")))
        .collect()
}

/// Search-pruning statistics (A3): candidates evaluated with and without
/// pruning, summed over a network's layers. Uses the engine's search
/// cache, so repeated shapes are counted without re-searching.
pub fn pruning_stats(network: &Network) -> (usize, usize) {
    pruning_stats_with(&ablation_engine(), network)
}

/// [`pruning_stats`] through an existing engine's search cache.
pub fn pruning_stats_with(engine: &PlanningEngine, network: &Network) -> (usize, usize) {
    let mut full = 0;
    let mut pruned = 0;
    for layer in network {
        full += engine
            .search(layer, array512(), SearchOptions::paper())
            .evaluated();
        pruned += engine
            .search(layer, array512(), SearchOptions::pruned())
            .evaluated();
    }
    (full, pruned)
}

/// The full printable ablation report.
pub fn report() -> String {
    let engine = ablation_engine();
    let mut out = String::from("== Ablations A1-A3 (512x512 array) ==\n\n");
    for network in [zoo::vgg13(), zoo::resnet18_table1()] {
        let rows = totals_with(&engine, &network);
        let im2col = rows[0].1 as f64;
        let mut table = TextTable::new(&["algorithm", "total cycles", "speedup vs im2col"]);
        table.align(1, Align::Right);
        table.align(2, Align::Right);
        for (alg, cycles) in &rows {
            table.add_row(&[
                alg.label().to_string(),
                cycles.to_string(),
                fmt_speedup(im2col / *cycles as f64),
            ]);
        }
        out.push_str(&format!("{}\n{}\n", network.name(), table.render()));
    }
    out.push_str(
        "Reading: channel tiling alone (square windows) and rectangular\n\
         windows alone each recover part of the gap between SDK and\n\
         VW-SDK; the full algorithm needs both. SDK-opt shows the\n\
         published SDK rule also leaves square-window gains on the\n\
         table.\n\n",
    );

    out.push_str("== A3: search-space pruning (never changes the optimum) ==\n\n");
    let mut table = TextTable::new(&[
        "network",
        "candidates (full)",
        "candidates (pruned)",
        "saved",
    ]);
    for c in 1..4 {
        table.align(c, Align::Right);
    }
    for network in [zoo::vgg13(), zoo::resnet18_table1()] {
        let (full, pruned) = pruning_stats_with(&engine, &network);
        table.add_row(&[
            network.name().to_string(),
            full.to_string(),
            pruned.to_string(),
            format!("{:.1}%", 100.0 * (full - pruned) as f64 / full as f64),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_order_correctly_on_resnet() {
        let rows = totals(&zoo::resnet18_table1());
        let cycles: std::collections::HashMap<_, _> = rows.into_iter().collect();
        let vw = cycles[&MappingAlgorithm::VwSdk];
        let square = cycles[&MappingAlgorithm::VwSdkSquare];
        let fullch = cycles[&MappingAlgorithm::VwSdkFullChannel];
        let im2col = cycles[&MappingAlgorithm::Im2col];
        assert!(vw <= square && square <= im2col);
        assert!(vw <= fullch && fullch <= im2col);
        assert_eq!(vw, 4_294);
        assert_eq!(im2col, 20_041);
        // Each restricted variant must genuinely lose something vs full
        // VW-SDK on ResNet-18.
        assert!(square > vw);
        assert!(fullch > vw);
    }

    #[test]
    fn pruning_saves_work_on_paper_networks() {
        for network in [zoo::vgg13(), zoo::resnet18_table1()] {
            let (full, pruned) = pruning_stats(&network);
            assert!(pruned < full, "{}: {pruned} !< {full}", network.name());
        }
    }

    #[test]
    fn sdk_opt_beats_published_sdk_on_vgg() {
        let rows = totals(&zoo::vgg13());
        let cycles: std::collections::HashMap<_, _> = rows.into_iter().collect();
        assert!(cycles[&MappingAlgorithm::SdkOpt] < cycles[&MappingAlgorithm::Sdk]);
    }

    #[test]
    fn report_covers_both_networks() {
        let text = report();
        assert!(text.contains("VGG-13"));
        assert!(text.contains("ResNet-18"));
        assert!(text.contains("pruned"));
    }
}
