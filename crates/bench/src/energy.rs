//! Extension A5: energy and conversion accounting.
//!
//! The paper argues fewer computing cycles mean proportionally less
//! energy because ADC/DAC conversions dominate (ref. \[3\], >98 %). That
//! argument implicitly assumes **whole-array activation**: every cycle
//! converts all columns regardless of how many hold useful weights. We
//! model both accounting disciplines:
//!
//! * [`Activity::WholeArray`] — the paper's premise: energy ∝ cycles,
//!   so VW-SDK's 4.67× cycle speedup is a 4.67× energy saving;
//! * [`Activity::ActiveOnly`] — an idealized design that gates unused
//!   rows/columns: here VW-SDK's advantage nearly disappears (~1.02× on
//!   ResNet-18) because it converts *more columns per cycle* — the
//!   useful-output count is mapping-invariant. The cycle win is then a
//!   latency win, not an energy win.
//!
//! This divergence is a genuine observation of the reproduction and is
//! discussed in docs/EXPERIMENTS.md (A5).

use crate::array512;
use pim_arch::energy::{EnergyBreakdown, EnergyModel};
use pim_mapping::layout::TileLayout;
use pim_mapping::{MappingAlgorithm, MappingPlan};
use pim_nets::{zoo, Network};
use pim_report::fmt_f64;
use pim_report::table::{Align, TextTable};

/// Which rows/columns pay conversion energy each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// All array rows and columns convert every cycle (the paper's
    /// implicit premise).
    WholeArray,
    /// Only rows/columns carrying mapped weights convert (idealized
    /// peripheral gating).
    ActiveOnly,
}

/// Exact energy of executing a plan once, from its tile layouts.
///
/// Returns the breakdown plus total ADC and DAC conversion counts.
///
/// # Panics
///
/// Panics for grouped layers (no cell-level layout).
pub fn plan_energy(
    plan: &MappingPlan,
    model: &EnergyModel,
    activity: Activity,
) -> (EnergyBreakdown, u64, u64) {
    let mut breakdown = EnergyBreakdown::new();
    let mut adc = 0u64;
    let mut dac = 0u64;
    let array = plan.array();
    for t in 0..plan.ar_cycles() {
        for u in 0..plan.ac_cycles() {
            let layout = TileLayout::build(plan, t, u).expect("dense layers lay out");
            let (rows, cols) = match activity {
                Activity::WholeArray => (array.rows(), array.cols()),
                Activity::ActiveOnly => (layout.rows_used(), layout.cols_used()),
            };
            let cycles = plan.n_parallel_windows();
            for _ in 0..cycles {
                breakdown.add_cycle(model, rows, cols, layout.used_cells());
            }
            adc += cycles * cols as u64;
            dac += cycles * rows as u64;
        }
    }
    (breakdown, adc, dac)
}

/// Network-level energy totals per algorithm: `(algorithm, total energy
/// in microjoules, ADC conversions, conversion fraction)`.
pub fn network_energy(
    network: &Network,
    activity: Activity,
) -> Vec<(MappingAlgorithm, f64, u64, f64)> {
    let model = EnergyModel::isaac_like();
    MappingAlgorithm::paper_trio()
        .into_iter()
        .map(|alg| {
            let mut total = EnergyBreakdown::new();
            let mut adc = 0u64;
            for layer in network {
                let plan = alg.plan(layer, array512()).expect("planning is total");
                let (b, a, _) = plan_energy(&plan, &model, activity);
                total.adc_pj += b.adc_pj;
                total.dac_pj += b.dac_pj;
                total.cell_pj += b.cell_pj;
                total.digital_pj += b.digital_pj;
                adc += a;
            }
            (
                alg,
                total.total_pj() / 1e6,
                adc,
                total.conversion_fraction(),
            )
        })
        .collect()
}

/// The full printable energy report.
pub fn report() -> String {
    let mut out = String::from("== A5: energy accounting (512x512, ISAAC-like constants) ==\n\n");
    for (activity, label) in [
        (
            Activity::WholeArray,
            "whole-array conversion (paper premise)",
        ),
        (
            Activity::ActiveOnly,
            "active-only conversion (gated periphery)",
        ),
    ] {
        out.push_str(&format!("-- {label} --\n\n"));
        for network in [zoo::vgg13(), zoo::resnet18_table1()] {
            let rows = network_energy(&network, activity);
            let base = rows[0].1;
            let mut table = TextTable::new(&[
                "algorithm",
                "energy (uJ)",
                "ADC conversions",
                "conversion share",
                "energy saving",
            ]);
            for c in 1..5 {
                table.align(c, Align::Right);
            }
            for (alg, uj, adc, frac) in &rows {
                table.add_row(&[
                    alg.label().to_string(),
                    fmt_f64(*uj, 1),
                    adc.to_string(),
                    format!("{}%", fmt_f64(frac * 100.0, 1)),
                    format!("{}x", fmt_f64(base / uj, 2)),
                ]);
            }
            out.push_str(&format!("{}\n{}\n", network.name(), table.render()));
        }
    }
    out.push_str(
        "Reading: under the paper's whole-array premise the energy saving\n\
         equals the cycle speedup (4.67x / 3.16x). With per-column gating\n\
         the saving nearly vanishes, because VW-SDK converts more columns\n\
         per cycle — its win is then latency, not energy. Constants are\n\
         synthetic (see DESIGN.md substitutions); only ratios matter.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_dominate_for_every_algorithm() {
        for activity in [Activity::WholeArray, Activity::ActiveOnly] {
            for (_, _, _, frac) in network_energy(&zoo::resnet18_table1(), activity) {
                assert!(frac > 0.9, "conversion share {frac}");
            }
        }
    }

    #[test]
    fn whole_array_energy_saving_equals_cycle_speedup() {
        let rows = network_energy(&zoo::resnet18_table1(), Activity::WholeArray);
        let im2col = rows[0].1;
        let vw = rows[2].1;
        assert!(rows[0].0 == MappingAlgorithm::Im2col && rows[2].0 == MappingAlgorithm::VwSdk);
        // Conversion terms scale exactly with cycles; the ~1% cell-read
        // term varies with per-tile occupancy, so the match is near-exact
        // rather than exact.
        let saving = im2col / vw;
        let cycle_speedup = 20_041.0 / 4_294.0;
        assert!(
            (saving - cycle_speedup).abs() / cycle_speedup < 0.01,
            "saving {saving}"
        );
    }

    #[test]
    fn active_only_saving_is_modest() {
        // The reproduction's observation: with gated peripheries the
        // conversion count is nearly mapping-invariant.
        let rows = network_energy(&zoo::resnet18_table1(), Activity::ActiveOnly);
        let saving = rows[0].1 / rows[2].1;
        assert!(saving > 0.9 && saving < 1.5, "saving {saving}");
    }

    #[test]
    fn plan_energy_scales_with_cycles_under_whole_array() {
        let model = EnergyModel::isaac_like();
        let layer = pim_nets::ConvLayer::square("c", 14, 3, 64, 64).unwrap();
        let im2col = MappingAlgorithm::Im2col.plan(&layer, array512()).unwrap();
        let vw = MappingAlgorithm::VwSdk.plan(&layer, array512()).unwrap();
        let (e_im2col, _, _) = plan_energy(&im2col, &model, Activity::WholeArray);
        let (e_vw, _, _) = plan_energy(&vw, &model, Activity::WholeArray);
        let ratio = e_im2col.total_pj() / e_vw.total_pj();
        let cycle_ratio = im2col.cycles() as f64 / vw.cycles() as f64;
        // Near-exact: only the ~1% cell-read term deviates.
        assert!((ratio - cycle_ratio).abs() / cycle_ratio < 0.02);
    }

    #[test]
    fn report_prints_both_disciplines() {
        let text = report();
        assert!(text.contains("whole-array"));
        assert!(text.contains("active-only"));
        assert!(text.contains("VGG-13"));
    }
}
