//! Fig. 7: how the array geometry limits channel tiles.
//!
//! (a) tiled input channels `ICt = ⌊rows / PW area⌋` as the parallel
//! window grows; (b) tiled output channels `OCt = ⌊cols / NWP⌋` as the
//! window count grows.

use pim_cost::model;
use pim_report::table::{Align, TextTable};

/// Parallel-window areas on the paper's Fig. 7(a) x-axis.
pub const PW_AREAS: [usize; 12] = [9, 16, 22, 28, 34, 40, 46, 52, 58, 64, 70, 76];

/// Windows-per-parallel-window counts on the paper's Fig. 7(b) x-axis.
pub const NWP_VALUES: [usize; 8] = [1, 3, 5, 7, 9, 11, 13, 15];

/// Array row/column counts swept in both panels.
pub const ARRAY_DIMS: [usize; 3] = [128, 256, 512];

/// `ICt` for every (area, rows) pair of panel (a).
pub fn tiled_ic_grid() -> Vec<(usize, [usize; 3])> {
    PW_AREAS
        .iter()
        .map(|&area| {
            let mut row = [0; 3];
            for (i, &rows) in ARRAY_DIMS.iter().enumerate() {
                row[i] = rows / area;
            }
            (area, row)
        })
        .collect()
}

/// `OCt` for every (NWP, cols) pair of panel (b).
pub fn tiled_oc_grid() -> Vec<(usize, [usize; 3])> {
    NWP_VALUES
        .iter()
        .map(|&nwp| {
            let mut row = [0; 3];
            for (i, &cols) in ARRAY_DIMS.iter().enumerate() {
                row[i] = model::tiled_oc(cols, nwp);
            }
            (nwp, row)
        })
        .collect()
}

/// The full printable Fig. 7 reproduction.
pub fn report() -> String {
    let mut out = String::from("== Fig. 7(a): tiled ICs vs parallel-window area ==\n\n");
    let mut a = TextTable::new(&["PW area", "128 rows", "256 rows", "512 rows"]);
    for c in 0..4 {
        a.align(c, Align::Right);
    }
    for (area, ics) in tiled_ic_grid() {
        a.add_row(&[
            area.to_string(),
            ics[0].to_string(),
            ics[1].to_string(),
            ics[2].to_string(),
        ]);
    }
    out.push_str(&a.render());

    out.push_str("\n== Fig. 7(b): tiled OCs vs windows per parallel window ==\n\n");
    let mut b = TextTable::new(&["NWP", "128 cols", "256 cols", "512 cols"]);
    for c in 0..4 {
        b.align(c, Align::Right);
    }
    for (nwp, ocs) in tiled_oc_grid() {
        b.add_row(&[
            nwp.to_string(),
            ocs[0].to_string(),
            ocs[1].to_string(),
            ocs[2].to_string(),
        ]);
    }
    out.push_str(&b.render());
    out.push_str(
        "\nReading: both tiles shrink hyperbolically, so window growth\n\
         must be balanced against channel coverage — the trade-off\n\
         Algorithm 1 optimizes.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_a_anchors() {
        let grid = tiled_ic_grid();
        // Area 9 (a 3x3 kernel window): 14 / 28 / 56 channels.
        assert_eq!(grid[0], (9, [14, 28, 56]));
        // Area 16 (4x4): 8 / 16 / 32 — the Fig. 4 SDK numbers.
        assert_eq!(grid[1], (16, [8, 16, 32]));
        // Area 12 is the ResNet conv4 window: floor(512/12) = 42 (checked
        // through the model directly since 12 is off the paper's axis).
        assert_eq!(512 / 12, 42);
    }

    #[test]
    fn panel_b_anchors() {
        let grid = tiled_oc_grid();
        assert_eq!(grid[0], (1, [128, 256, 512]));
        assert_eq!(grid[1], (3, [42, 85, 170]));
        assert_eq!(grid[7], (15, [8, 17, 34]));
    }

    #[test]
    fn tiles_decrease_monotonically() {
        for window in tiled_ic_grid().windows(2) {
            for i in 0..3 {
                assert!(window[1].1[i] <= window[0].1[i]);
            }
        }
        for window in tiled_oc_grid().windows(2) {
            for i in 0..3 {
                assert!(window[1].1[i] <= window[0].1[i]);
            }
        }
    }

    #[test]
    fn report_renders_both_panels() {
        let text = report();
        assert!(text.contains("Fig. 7(a)"));
        assert!(text.contains("Fig. 7(b)"));
    }
}
