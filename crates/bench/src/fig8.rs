//! Fig. 8: speedups normalized to im2col — (a) per layer on a 512×512
//! array; (b) whole networks across array sizes.

use crate::array512;
use pim_arch::presets;
use pim_mapping::MappingAlgorithm;
use pim_nets::{zoo, Network};
use pim_report::chart::GroupedBarChart;
use pim_report::fmt_f64;
use pim_report::table::{Align, TextTable};
use vw_sdk::Planner;

fn networks() -> [Network; 2] {
    [zoo::vgg13(), zoo::resnet18_table1()]
}

/// Per-layer speedups (SDK and VW-SDK over im2col) for one network on the
/// 512×512 array, plus the network total in the last element — the bars
/// of Fig. 8(a).
pub fn part_a_series(network: &Network) -> (Vec<f64>, Vec<f64>) {
    let report = Planner::new(array512())
        .plan_network(network)
        .expect("planning is total");
    let mut sdk = report
        .per_layer_speedups(MappingAlgorithm::Sdk, MappingAlgorithm::Im2col)
        .expect("both configured");
    let mut vw = report
        .per_layer_speedups(MappingAlgorithm::VwSdk, MappingAlgorithm::Im2col)
        .expect("both configured");
    sdk.push(
        report
            .speedup(MappingAlgorithm::Sdk, MappingAlgorithm::Im2col)
            .expect("configured"),
    );
    vw.push(
        report
            .speedup(MappingAlgorithm::VwSdk, MappingAlgorithm::Im2col)
            .expect("configured"),
    );
    (sdk, vw)
}

/// Whole-network speedups over im2col for every Fig. 8(b) array size:
/// `(array label, SDK speedup, VW speedup)` per entry.
pub fn part_b_series(network: &Network) -> Vec<(String, f64, f64)> {
    presets::fig8b_sweep()
        .into_iter()
        .map(|preset| {
            let report = Planner::new(preset.array)
                .plan_network(network)
                .expect("planning is total");
            (
                preset.array.to_string(),
                report
                    .speedup(MappingAlgorithm::Sdk, MappingAlgorithm::Im2col)
                    .expect("configured"),
                report
                    .speedup(MappingAlgorithm::VwSdk, MappingAlgorithm::Im2col)
                    .expect("configured"),
            )
        })
        .collect()
}

/// The full printable Fig. 8 reproduction.
pub fn report() -> String {
    let mut out = String::from("== Fig. 8(a): per-layer speedup vs im2col (512x512) ==\n\n");
    for network in networks() {
        let (sdk, vw) = part_a_series(&network);
        let mut table = TextTable::new(&["layer", "SDK", "VW-SDK (Ours)"]);
        table.align(1, Align::Right);
        table.align(2, Align::Right);
        let n_layers = network.len();
        for i in 0..=n_layers {
            let label = if i == n_layers {
                "total".to_string()
            } else {
                (i + 1).to_string()
            };
            table.add_row(&[label, fmt_f64(sdk[i], 2), fmt_f64(vw[i], 2)]);
        }
        out.push_str(&format!("{}\n{}\n", network.name(), table.render()));
    }

    out.push_str("== Fig. 8(b): total speedup vs im2col across array sizes ==\n\n");
    for network in networks() {
        let mut chart = GroupedBarChart::new(
            format!("{} (bars: total speedup)", network.name()),
            &["SDK", "VW-SDK"],
        );
        let mut table = TextTable::new(&["array", "SDK", "VW-SDK (Ours)"]);
        table.align(1, Align::Right);
        table.align(2, Align::Right);
        for (label, sdk, vw) in part_b_series(&network) {
            table.add_row(&[label.clone(), fmt_f64(sdk, 2), fmt_f64(vw, 2)]);
            chart.add_group(label, &[sdk, vw]);
        }
        out.push_str(&format!(
            "{}\n{}\n{}\n",
            network.name(),
            table.render(),
            chart.render(40)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_totals_match_paper_headlines() {
        let (sdk, vw) = part_a_series(&zoo::resnet18_table1());
        assert!((vw.last().unwrap() - 4.67).abs() < 0.01);
        assert!((sdk.last().unwrap() - 20_041.0 / 7_240.0).abs() < 1e-9);
    }

    #[test]
    fn vgg_layer1_speedup_is_about_7_9() {
        let (_, vw) = part_a_series(&zoo::vgg13());
        assert!((vw[0] - 49_284.0 / 6_216.0).abs() < 1e-9);
        // Deep layers gain nothing.
        assert_eq!(vw[8], 1.0);
    }

    #[test]
    fn sdk_never_below_one_and_vw_never_below_sdk_here() {
        for network in networks() {
            let (sdk, vw) = part_a_series(&network);
            for (s, v) in sdk.iter().zip(&vw) {
                assert!(*s >= 1.0);
                assert!(v >= s);
            }
        }
    }

    #[test]
    fn speedup_grows_with_array_size() {
        // Fig. 8(b): both algorithms benefit from larger arrays.
        for network in networks() {
            let series = part_b_series(&network);
            let first_vw = series.first().unwrap().2;
            let last_vw = series.last().unwrap().2;
            assert!(
                last_vw > first_vw,
                "{}: VW speedup should grow ({first_vw} -> {last_vw})",
                network.name()
            );
        }
    }

    #[test]
    fn vw_dominates_sdk_on_every_array() {
        for network in networks() {
            for (label, sdk, vw) in part_b_series(&network) {
                assert!(
                    vw >= sdk,
                    "{}: VW {vw} < SDK {sdk} on {label}",
                    network.name()
                );
            }
        }
    }
}
