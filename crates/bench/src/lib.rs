//! Experiment harness regenerating every table and figure of the VW-SDK
//! paper, plus extension experiments.
//!
//! Each module corresponds to one artifact of the paper's evaluation and
//! exposes a `report()` function returning the printable result; the
//! binaries in `src/bin/` are thin wrappers. docs/EXPERIMENTS.md is the
//! index recording the paper-vs-measured comparison for each.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table I (per-layer windows and total cycles) |
//! | [`fig4`] | Fig. 4 (computable channels per array size) |
//! | [`fig5`] | Fig. 5(a) worked example + Fig. 5(b) window sweep |
//! | [`fig7`] | Fig. 7(a) tiled ICs, Fig. 7(b) tiled OCs |
//! | [`fig8`] | Fig. 8(a) per-layer speedups, Fig. 8(b) array sweep |
//! | [`fig9`] | Fig. 9(a)/(b) array utilization |
//! | [`ablation`] | A1–A3: search-space ablations and pruning |
//! | [`energy`] | A5: energy/conversion accounting |
//! | [`precision`] | A6: device-precision sweep |
//! | [`chip`] | A7: chip-scale pipelined deployment |
//! | [`sweep`] | A4: extra networks × array sizes (via the parallel, memoized `PlanningEngine`) |
//! | [`simbench`] | A8: batched-simulation MACs/s trajectory (`BENCH_sim.json`) |
//! | [`servebench`] | A9: loopback serving RPS/latency + telemetry-overhead gate (`BENCH_serve.json`) |
//! | [`planbench`] | A10: cold-search plan sweep, pruned vs exhaustive (`BENCH_plan.json`) |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ablation;
pub mod chip;
pub mod energy;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod planbench;
pub mod precision;
pub mod servebench;
pub mod simbench;
pub mod sweep;
pub mod table1;

use pim_arch::PimArray;

/// The paper's headline array: 512×512.
pub fn array512() -> PimArray {
    PimArray::new(512, 512).expect("positive dimensions")
}

/// The Fig. 5 array: 512 rows × 256 columns.
pub fn array512x256() -> PimArray {
    PimArray::new(512, 256).expect("positive dimensions")
}
