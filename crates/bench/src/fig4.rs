//! Fig. 4: input/output channels computable in one cycle, per mapping and
//! array size, against the actual channel counts of VGG-13 layers.

use pim_arch::presets;
use pim_cost::capacity;
use pim_nets::zoo;
use pim_report::table::{Align, TextTable};

/// One series point of Fig. 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityPoint {
    /// Array label, e.g. `512x512`.
    pub array: String,
    /// Mapping label (`im2col` or `SDK 4x4`).
    pub mapping: &'static str,
    /// Input channels computable in one cycle.
    pub max_ic: usize,
    /// Output channels computable in one cycle.
    pub max_oc: usize,
}

/// Computes every capacity point of the figure (3×3 kernels, SDK at
/// `d = 2`, i.e. 4×4 parallel windows — the paper's configuration).
pub fn points() -> Vec<CapacityPoint> {
    let mut out = Vec::new();
    for preset in presets::fig4_sizes() {
        let im2col = capacity::im2col_capacity(preset.array, 3);
        out.push(CapacityPoint {
            array: preset.array.to_string(),
            mapping: "im2col",
            max_ic: im2col.max_ic,
            max_oc: im2col.max_oc,
        });
        let sdk = capacity::sdk_capacity(preset.array, 3, 2);
        out.push(CapacityPoint {
            array: preset.array.to_string(),
            mapping: "SDK 4x4",
            max_ic: sdk.max_ic,
            max_oc: sdk.max_oc,
        });
    }
    out
}

/// The full printable Fig. 4 reproduction.
pub fn report() -> String {
    let mut out = String::from("== Fig. 4: computable channel size per cycle (3x3 kernels) ==\n\n");
    let mut table = TextTable::new(&["array", "mapping", "max IC/cycle", "max OC/cycle"]);
    table.align(2, Align::Right);
    table.align(3, Align::Right);
    for p in points() {
        table.add_row(&[
            p.array.clone(),
            p.mapping.to_string(),
            p.max_ic.to_string(),
            p.max_oc.to_string(),
        ]);
    }
    out.push_str(&table.render());

    out.push_str("\nActual VGG-13 channel demands (the figure's triangles):\n");
    let mut demand = TextTable::new(&["layer", "IC", "OC"]);
    demand.align(1, Align::Right);
    demand.align(2, Align::Right);
    for layer in zoo::vgg13().layers().iter().skip(1).take(7) {
        demand.add_row(&[
            layer.name().to_string(),
            layer.in_channels().to_string(),
            layer.out_channels().to_string(),
        ]);
    }
    out.push_str(&demand.render());
    out.push_str(
        "\nReading: every conv layer from conv3 onward needs more input\n\
         channels than any published array can hold in one cycle under\n\
         either mapping — channel tiling (VW-SDK) is unavoidable.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_match_paper_axis_anchors() {
        let pts = points();
        let find = |array: &str, mapping: &str| {
            pts.iter()
                .find(|p| p.array == array && p.mapping == mapping)
                .unwrap()
        };
        // The paper's x-axis anchors: 8, 14, 16, 28, 32, 56.
        assert_eq!(find("128x128", "SDK 4x4").max_ic, 8);
        assert_eq!(find("128x128", "im2col").max_ic, 14);
        assert_eq!(find("256x256", "SDK 4x4").max_ic, 16);
        assert_eq!(find("256x256", "im2col").max_ic, 28);
        assert_eq!(find("512x512", "SDK 4x4").max_ic, 32);
        assert_eq!(find("512x512", "im2col").max_ic, 56);
        // OC anchors for SDK: 32/64/128/64.
        assert_eq!(find("128x128", "SDK 4x4").max_oc, 32);
        assert_eq!(find("512x512", "SDK 4x4").max_oc, 128);
        assert_eq!(find("512x256", "SDK 4x4").max_oc, 64);
    }

    #[test]
    fn report_contains_all_arrays() {
        let text = report();
        for array in ["128x128", "256x256", "512x512", "512x256"] {
            assert!(text.contains(array));
        }
    }
}
