//! Cold-search planning throughput: pruned Algorithm 1 vs the
//! paper-form exhaustive scan.
//!
//! The workload is the full sweep surface — every distinct layer shape
//! of the zoo crossed with a set of array geometries — searched cold
//! (no memoized results). The baseline runs the exhaustive sequential
//! scan exactly as the paper writes it; the contender runs the
//! bound-pruned, strip-parallel scan through a fresh [`SearchCache`],
//! so per-shape candidate tables are reused across array geometries the
//! way `vwsdk sweep` and the chip deploy optimizer reuse them. Both
//! passes search the same task list, and every task's outcome is
//! compared field-by-field: pruning is only a win if it is lossless.
//!
//! Consumed by the `vwsdk bench plan --emit BENCH_plan.json` emitter
//! that CI tracks; `--check` gates on losslessness and speedup > 1.

use pim_arch::PimArray;
use pim_cost::memo::SearchCache;
use pim_cost::search::{self, SearchOptions, SearchResult};
use pim_nets::{zoo, ConvLayer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What to sweep; [`PlanBenchOptions::default`] is the CI
/// configuration (every zoo network crossed with four array
/// geometries).
#[derive(Debug, Clone)]
pub struct PlanBenchOptions {
    /// Zoo networks contributing layer shapes.
    pub networks: Vec<String>,
    /// Array geometries every distinct shape is searched against.
    pub arrays: Vec<PimArray>,
    /// Quick mode: one timed pass per side, no warm-up (CI smoke);
    /// otherwise the best of three after a warm-up.
    pub quick: bool,
    /// Worker threads for the pruned pass (0 = all cores). The
    /// exhaustive baseline is always sequential — that is the thing
    /// being replaced.
    pub jobs: usize,
}

impl Default for PlanBenchOptions {
    fn default() -> Self {
        Self {
            networks: zoo::all().iter().map(|n| n.name().to_string()).collect(),
            arrays: vec![
                PimArray::new(512, 512).expect("positive dimensions"),
                PimArray::new(512, 256).expect("positive dimensions"),
                PimArray::new(256, 256).expect("positive dimensions"),
                PimArray::new(128, 128).expect("positive dimensions"),
            ],
            quick: false,
            jobs: 0,
        }
    }
}

/// One timed side of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PassPoint {
    /// Wall-clock seconds of the fastest run.
    pub seconds: f64,
    /// Completed searches per wall-clock second.
    pub searches_per_s: f64,
    /// Candidates fully evaluated through the cost model, summed over
    /// all tasks.
    pub evaluated: u64,
    /// Candidates skipped by the cycle lower bound, summed over all
    /// tasks (always 0 for the exhaustive side).
    pub pruned: u64,
}

/// The measured comparison plus the configuration that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanBenchReport {
    /// Networks whose layers seeded the shape set.
    pub networks: Vec<String>,
    /// Array geometries, as `RxC`.
    pub arrays: Vec<String>,
    /// Distinct layer shapes found across the networks.
    pub shapes: usize,
    /// Searches performed per pass: distinct shapes × arrays.
    pub tasks: usize,
    /// Whether quick (single-run) timing was used.
    pub quick: bool,
    /// Worker threads requested for the pruned pass (0 = all cores).
    pub jobs: usize,
    /// Worker threads actually used for the pruned pass.
    pub workers: usize,
    /// Timed runs per side (the fastest is kept).
    pub runs: usize,
    /// The exhaustive sequential baseline.
    pub exhaustive: PassPoint,
    /// The pruned, table-sharing, parallel contender.
    pub pruned: PassPoint,
    /// Tasks whose pruned outcome differed from the exhaustive one
    /// (best candidate, its full cost record, the im2col fallback, or
    /// the evaluated+pruned accounting). Must be 0.
    pub mismatches: usize,
}

impl PlanBenchReport {
    /// Exhaustive seconds over pruned seconds: the headline number.
    pub fn speedup(&self) -> f64 {
        if self.pruned.seconds > 0.0 {
            self.exhaustive.seconds / self.pruned.seconds
        } else {
            0.0
        }
    }

    /// Fraction of the exhaustive candidate space the bound skipped.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.pruned.evaluated + self.pruned.pruned;
        if total > 0 {
            self.pruned.pruned as f64 / total as f64
        } else {
            0.0
        }
    }

    /// `true` when every task's pruned outcome matched the exhaustive
    /// one exactly.
    pub fn lossless(&self) -> bool {
        self.mismatches == 0
    }

    /// The CI gate: pruning must be lossless and measurably faster
    /// than the exhaustive baseline in the same run.
    pub fn passes_check(&self) -> bool {
        self.lossless() && self.speedup() > 1.0
    }

    /// The `BENCH_plan.json` payload: a flat, machine-diffable record
    /// of the comparison. Keys are stable; numbers carry enough digits
    /// to compare runs.
    pub fn to_json(&self) -> String {
        let quoted = |xs: &[String]| {
            xs.iter()
                .map(|x| format!("\"{x}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"plan-cold-search\",\n");
        out.push_str(&format!("  \"networks\": [{}],\n", quoted(&self.networks)));
        out.push_str(&format!("  \"arrays\": [{}],\n", quoted(&self.arrays)));
        out.push_str(&format!("  \"shapes\": {},\n", self.shapes));
        out.push_str(&format!("  \"tasks\": {},\n", self.tasks));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"runs\": {},\n", self.runs));
        out.push_str(&format!(
            "  \"exhaustive\": {{\"seconds\": {:.6}, \"searches_per_s\": {:.1}, \
             \"candidates_evaluated\": {}}},\n",
            self.exhaustive.seconds, self.exhaustive.searches_per_s, self.exhaustive.evaluated
        ));
        out.push_str(&format!(
            "  \"pruned\": {{\"seconds\": {:.6}, \"searches_per_s\": {:.1}, \
             \"candidates_evaluated\": {}, \"candidates_pruned\": {}, \
             \"pruned_fraction\": {:.4}}},\n",
            self.pruned.seconds,
            self.pruned.searches_per_s,
            self.pruned.evaluated,
            self.pruned.pruned,
            self.pruned_fraction()
        ));
        out.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup()));
        out.push_str(&format!("  \"lossless\": {}\n", self.lossless()));
        out.push_str("}\n");
        out
    }

    /// Human-readable comparison.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "cold plan search: {} tasks ({} shapes x {} arrays), {} run{} per side\n\
             {:>14}  {:>9}  {:>11}  {:>13}  {:>13}\n",
            self.tasks,
            self.shapes,
            self.arrays.len(),
            self.runs,
            if self.runs == 1 { "" } else { "s" },
            "pass",
            "seconds",
            "searches/s",
            "evaluated",
            "pruned",
        );
        out.push_str(&format!(
            "{:>14}  {:>9.4}  {:>11.1}  {:>13}  {:>13}\n",
            "exhaustive x1",
            self.exhaustive.seconds,
            self.exhaustive.searches_per_s,
            self.exhaustive.evaluated,
            self.exhaustive.pruned,
        ));
        out.push_str(&format!(
            "{:>14}  {:>9.4}  {:>11.1}  {:>13}  {:>13}\n",
            format!("pruned x{}", self.workers),
            self.pruned.seconds,
            self.pruned.searches_per_s,
            self.pruned.evaluated,
            self.pruned.pruned,
        ));
        out.push_str(&format!(
            "speedup: {:.2}x, bound skipped {:.1}% of the candidate space, lossless: {}\n",
            self.speedup(),
            100.0 * self.pruned_fraction(),
            if self.lossless() { "yes" } else { "NO" },
        ));
        out
    }
}

/// The deduplicated sweep surface: one representative layer per
/// distinct shape, crossed with every array geometry. Deduplication
/// mirrors what the memoized `PlanningEngine` would do anyway — a
/// repeated shape is a cache hit, not a search — so both passes time
/// pure cold-search work.
fn collect_tasks(
    options: &PlanBenchOptions,
) -> Result<(usize, Vec<(ConvLayer, PimArray)>), String> {
    let mut shapes = std::collections::HashSet::new();
    let mut representatives = Vec::new();
    for name in &options.networks {
        let network = zoo::by_name(name).ok_or_else(|| format!("unknown zoo network {name:?}"))?;
        for layer in network.layers() {
            if shapes.insert(layer.shape()) {
                representatives.push(layer.clone());
            }
        }
    }
    let tasks = representatives
        .iter()
        .flat_map(|layer| {
            options
                .arrays
                .iter()
                .map(move |&array| (layer.clone(), array))
        })
        .collect::<Vec<_>>();
    Ok((representatives.len(), tasks))
}

fn resolved_workers(jobs: usize, tasks: usize) -> usize {
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    let requested = if jobs == 0 { hardware } else { jobs };
    requested.min(tasks).max(1)
}

/// One exhaustive sequential pass over every task — the paper-form
/// baseline the pruned path replaces.
fn exhaustive_pass(tasks: &[(ConvLayer, PimArray)]) -> Vec<SearchResult> {
    tasks
        .iter()
        .map(|(layer, array)| search::optimal_window_with(layer, *array, SearchOptions::paper()))
        .collect()
}

/// One cold pruned pass: a fresh [`SearchCache`] (so nothing is
/// memoized going in, but per-shape candidate tables are shared across
/// the array geometries), tasks sharded over `workers` scoped threads.
fn pruned_pass(tasks: &[(ConvLayer, PimArray)], workers: usize) -> Vec<Arc<SearchResult>> {
    let cache = SearchCache::new();
    if workers <= 1 {
        return tasks
            .iter()
            .map(|(layer, array)| {
                cache.optimal_window_with_jobs(layer, *array, SearchOptions::pruned(), 1)
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Arc<SearchResult>>>> =
        tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((layer, array)) = tasks.get(index) else {
                    break;
                };
                let result =
                    cache.optimal_window_with_jobs(layer, *array, SearchOptions::pruned(), 1);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task completed")
        })
        .collect()
}

/// A task's pruned outcome matches the exhaustive one exactly: same
/// winning candidate with the same full cost record, same im2col
/// fallback, and every skipped candidate accounted for.
fn outcomes_match(exhaustive: &SearchResult, pruned: &SearchResult) -> bool {
    exhaustive.best() == pruned.best()
        && exhaustive.im2col() == pruned.im2col()
        && pruned.evaluated() + pruned.pruned() == exhaustive.evaluated()
}

/// Runs the comparison.
///
/// # Errors
///
/// Returns a message for an empty network or array list, or an unknown
/// zoo network name.
pub fn run(options: &PlanBenchOptions) -> Result<PlanBenchReport, String> {
    if options.networks.is_empty() {
        return Err("network list must not be empty".to_string());
    }
    if options.arrays.is_empty() {
        return Err("array list must not be empty".to_string());
    }
    let (shapes, tasks) = collect_tasks(options)?;
    if tasks.is_empty() {
        return Err("the selected networks have no layers to search".to_string());
    }
    let workers = resolved_workers(options.jobs, tasks.len());
    let runs = if options.quick { 1 } else { 3 };

    // One untimed warm-up per side keeps allocator state out of the
    // first measurement (skipped in quick mode).
    if !options.quick {
        exhaustive_pass(&tasks);
        pruned_pass(&tasks, workers);
    }

    let mut exhaustive_seconds = f64::INFINITY;
    let mut exhaustive_results = Vec::new();
    for _ in 0..runs {
        let start = Instant::now();
        let results = exhaustive_pass(&tasks);
        exhaustive_seconds = exhaustive_seconds.min(start.elapsed().as_secs_f64());
        exhaustive_results = results;
    }

    let mut pruned_seconds = f64::INFINITY;
    let mut pruned_results = Vec::new();
    for _ in 0..runs {
        let start = Instant::now();
        let results = pruned_pass(&tasks, workers);
        pruned_seconds = pruned_seconds.min(start.elapsed().as_secs_f64());
        pruned_results = results;
    }

    let mismatches = exhaustive_results
        .iter()
        .zip(&pruned_results)
        .filter(|(exhaustive, pruned)| !outcomes_match(exhaustive, pruned))
        .count();

    let exhaustive_seconds = exhaustive_seconds.max(1e-9);
    let pruned_seconds = pruned_seconds.max(1e-9);
    Ok(PlanBenchReport {
        networks: options.networks.clone(),
        arrays: options.arrays.iter().map(|a| a.to_string()).collect(),
        shapes,
        tasks: tasks.len(),
        quick: options.quick,
        jobs: options.jobs,
        workers,
        runs,
        exhaustive: PassPoint {
            seconds: exhaustive_seconds,
            searches_per_s: tasks.len() as f64 / exhaustive_seconds,
            evaluated: exhaustive_results
                .iter()
                .map(|r| r.evaluated() as u64)
                .sum(),
            pruned: 0,
        },
        pruned: PassPoint {
            seconds: pruned_seconds,
            searches_per_s: tasks.len() as f64 / pruned_seconds,
            evaluated: pruned_results.iter().map(|r| r.evaluated() as u64).sum(),
            pruned: pruned_results.iter().map(|r| r.pruned() as u64).sum(),
        },
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> PlanBenchOptions {
        PlanBenchOptions {
            networks: vec!["lenet5".to_string(), "tiny".to_string()],
            arrays: vec![
                PimArray::new(128, 128).expect("positive"),
                PimArray::new(64, 64).expect("positive"),
            ],
            quick: true,
            jobs: 2,
        }
    }

    #[test]
    fn comparison_is_lossless_and_accounts_every_candidate() {
        let report = run(&tiny_options()).unwrap();
        assert!(report.lossless(), "pruned search diverged from exhaustive");
        assert_eq!(report.tasks, report.shapes * 2);
        assert!(report.exhaustive.evaluated > 0);
        // Every exhaustive candidate is either evaluated or pruned on
        // the pruned side — nothing silently vanishes.
        assert_eq!(
            report.pruned.evaluated + report.pruned.pruned,
            report.exhaustive.evaluated
        );
        assert!(report.pruned.pruned > 0, "bound pruned nothing");
        assert!(report.exhaustive.pruned == 0);
    }

    #[test]
    fn emitted_json_has_the_stable_keys() {
        let report = run(&tiny_options()).unwrap();
        let json = report.to_json();
        for key in [
            "\"bench\": \"plan-cold-search\"",
            "\"networks\": [\"lenet5\", \"tiny\"]",
            "\"shapes\":",
            "\"tasks\":",
            "\"exhaustive\": {\"seconds\":",
            "\"pruned\": {\"seconds\":",
            "\"candidates_pruned\":",
            "\"pruned_fraction\":",
            "\"speedup\":",
            "\"lossless\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(report.render_text().contains("lossless: yes"));
    }

    #[test]
    fn invalid_sweeps_are_rejected() {
        let mut o = tiny_options();
        o.networks = vec![];
        assert!(run(&o).is_err());
        o = tiny_options();
        o.arrays = vec![];
        assert!(run(&o).is_err());
        o = tiny_options();
        o.networks = vec!["no-such-net".to_string()];
        assert!(run(&o).is_err());
    }
}
