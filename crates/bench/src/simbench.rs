//! Batched-simulation throughput: the repo's first perf trajectory.
//!
//! Measures simulated MACs/s of the functional network executor at a
//! sweep of batch sizes. The sequential baseline is the batch-1 point —
//! one `execute_batch(1)` call programs every crossbar and streams one
//! input, exactly what N independent single-IFM simulations cost per
//! image. Rising MACs/s across the batch sweep is the paper's
//! amortization argument made measurable: programming (and layout
//! construction) happen once per deployment while programmed rows are
//! re-read once per *batch* MVM instead of once per input.
//!
//! Consumed by two frontends: the `batch_sim` criterion bench and the
//! `vwsdk bench sim --emit BENCH_sim.json` emitter that CI tracks.

use pim_arch::PimArray;
use pim_mapping::{MappingAlgorithm, MappingPlan};
use pim_nets::{zoo, Network};
use pim_sim::{ExecMode, NetworkExecutor};
use pim_tensor::{gen, Scalar, Tensor3, Tensor4};
use std::time::Instant;

/// What to measure; [`SimBenchOptions::default`] is the CI
/// configuration (vgg13-sim on the paper's 512×512 array, VW-SDK
/// plans, quantized mode, batches 1/8/64).
#[derive(Debug, Clone)]
pub struct SimBenchOptions {
    /// Zoo network to simulate.
    pub network: String,
    /// Array geometry the plans target.
    pub array: PimArray,
    /// Mapping algorithm for every layer.
    pub algorithm: MappingAlgorithm,
    /// Inter-stage execution mode.
    pub mode: ExecMode,
    /// Batch sizes to sweep, ascending; must start at 1 (the
    /// sequential baseline).
    pub batches: Vec<usize>,
    /// Quick mode: one timed run per point (CI smoke); otherwise the
    /// best of three.
    pub quick: bool,
    /// Worker threads for the stream phase (0 = all cores).
    pub jobs: usize,
    /// Seed of the generated tensors.
    pub seed: u64,
}

impl Default for SimBenchOptions {
    fn default() -> Self {
        Self {
            network: "vgg13-sim".to_string(),
            array: PimArray::new(512, 512).expect("positive dimensions"),
            algorithm: MappingAlgorithm::VwSdk,
            mode: ExecMode::Quantized,
            batches: vec![1, 8, 64],
            quick: false,
            jobs: 1,
            seed: 2024,
        }
    }
}

/// One measured batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPoint {
    /// Inputs streamed per `execute_batch` call.
    pub batch: usize,
    /// Timed runs (the fastest is kept).
    pub runs: usize,
    /// Wall-clock seconds of the fastest run.
    pub seconds: f64,
    /// Simulated MACs per run (batch aggregate across all stages).
    pub macs: u64,
    /// Crossbar programmings per run — constant across batch sizes,
    /// which *is* the amortization.
    pub programmings: u64,
    /// The headline number: simulated MACs per wall-clock second.
    pub macs_per_s: f64,
}

/// The measured trajectory plus the configuration that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct SimBenchReport {
    /// Network name.
    pub network: String,
    /// Array geometry, as `RxC`.
    pub array: String,
    /// Mapping algorithm label.
    pub algorithm: String,
    /// Execution mode label.
    pub mode: String,
    /// Whether quick (single-run) timing was used.
    pub quick: bool,
    /// Stream-phase worker threads requested.
    pub jobs: usize,
    /// One point per measured batch size, in sweep order.
    pub points: Vec<BatchPoint>,
}

impl SimBenchReport {
    /// The point measured at `batch`, if it was in the sweep.
    pub fn point(&self, batch: usize) -> Option<&BatchPoint> {
        self.points.iter().find(|p| p.batch == batch)
    }

    /// MACs/s at `batch` divided by the sequential (batch-1) baseline:
    /// how much faster N inputs stream through one programmed pipeline
    /// than N single-input simulations, each reprogramming everything.
    pub fn speedup_vs_sequential(&self, batch: usize) -> Option<f64> {
        let base = self.point(1)?.macs_per_s;
        let at = self.point(batch)?.macs_per_s;
        (base > 0.0).then(|| at / base)
    }

    /// The largest measured batch size.
    pub fn max_batch(&self) -> usize {
        self.points.iter().map(|p| p.batch).max().unwrap_or(0)
    }

    /// `true` when the largest batch's MACs/s is at least the batch-1
    /// baseline — the CI sanity floor (amortization can't make the
    /// simulator *slower*).
    pub fn passes_sanity_floor(&self) -> bool {
        self.speedup_vs_sequential(self.max_batch())
            .is_some_and(|s| s >= 1.0)
    }

    /// The `BENCH_sim.json` payload: a flat, machine-diffable record of
    /// the trajectory. Keys are stable; numbers carry enough digits to
    /// compare runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"sim-macs-per-second\",\n");
        out.push_str(&format!("  \"network\": \"{}\",\n", self.network));
        out.push_str(&format!("  \"array\": \"{}\",\n", self.array));
        out.push_str(&format!("  \"algorithm\": \"{}\",\n", self.algorithm));
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"batch\": {}, \"runs\": {}, \"seconds\": {:.6}, \"macs\": {}, \
                 \"programmings\": {}, \"macs_per_s\": {:.1}}}{}\n",
                p.batch,
                p.runs,
                p.seconds,
                p.macs,
                p.programmings,
                p.macs_per_s,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let max_batch = self.max_batch();
        out.push_str(&format!(
            "  \"speedup_max_batch_vs_sequential\": {:.3}\n",
            self.speedup_vs_sequential(max_batch).unwrap_or(0.0)
        ));
        out.push_str("}\n");
        out
    }

    /// Human-readable amortization curve.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "simulated MACs/s: {} on {} ({} plans, {} mode, jobs {})\n\
             {:>6}  {:>5}  {:>10}  {:>13}  {:>13}  {:>8}\n",
            self.network,
            self.array,
            self.algorithm,
            self.mode,
            self.jobs,
            "batch",
            "runs",
            "seconds",
            "MACs",
            "MACs/s",
            "speedup"
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>6}  {:>5}  {:>10.4}  {:>13}  {:>13.0}  {:>7.2}x\n",
                p.batch,
                p.runs,
                p.seconds,
                p.macs,
                p.macs_per_s,
                self.speedup_vs_sequential(p.batch).unwrap_or(0.0),
            ));
        }
        out.push_str(&format!(
            "programmings per run: {} at every batch size (programmed once, streamed N times)\n",
            self.points.first().map_or(0, |p| p.programmings),
        ));
        out
    }
}

/// A network with plans, weights and a pool of input feature maps,
/// ready to execute at any batch size up to the pool — setup is done
/// once, outside the timed region. Also the workload behind the
/// `batch_sim` criterion bench.
pub struct PreparedSim<T> {
    network: Network,
    plans: Vec<MappingPlan>,
    weights: Vec<Tensor4<T>>,
    ifms: Vec<Tensor3<T>>,
    executor: NetworkExecutor,
    jobs: usize,
}

impl<T: Scalar + Send + Sync> PreparedSim<T> {
    /// Plans `network` and generates deterministic tensors for up to
    /// `max_batch` inputs.
    ///
    /// # Errors
    ///
    /// Returns a message when the network is unknown or a layer cannot
    /// be planned.
    pub fn new(options: &SimBenchOptions, max_batch: usize) -> Result<Self, String> {
        let network = zoo::by_name(&options.network)
            .ok_or_else(|| format!("unknown zoo network {:?}", options.network))?;
        let plans = network
            .layers()
            .iter()
            .map(|l| options.algorithm.plan(l, options.array))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| e.to_string())?;
        let first = network
            .layers()
            .first()
            .ok_or_else(|| "empty network".to_string())?;
        let ifms = (0..max_batch)
            .map(|i| {
                gen::random3::<T>(
                    first.in_channels(),
                    first.input_h(),
                    first.input_w(),
                    options.seed.wrapping_add(i as u64),
                )
            })
            .collect();
        let weights = network
            .layers()
            .iter()
            .enumerate()
            .map(|(i, layer)| {
                gen::random4::<T>(
                    layer.out_channels(),
                    layer.in_channels_per_group(),
                    layer.kernel_h(),
                    layer.kernel_w(),
                    options.seed ^ (i as u64 + 1),
                )
            })
            .collect();
        Ok(Self {
            network,
            plans,
            weights,
            ifms,
            executor: NetworkExecutor::new().with_mode(options.mode),
            jobs: options.jobs,
        })
    }

    /// One program-then-stream execution over the first `batch` inputs;
    /// returns `(macs, programmings)` from the aggregated stage records.
    ///
    /// # Panics
    ///
    /// Panics if `batch` exceeds the prepared pool or execution fails
    /// (a bench harness has no graceful degradation story).
    pub fn execute(&self, batch: usize) -> (u64, u64) {
        let run = self
            .executor
            .execute_batch(
                &self.network,
                &self.plans,
                &self.ifms[..batch],
                &self.weights,
                self.jobs,
            )
            .expect("prepared workload executes");
        let macs = run.stages().iter().map(|s| s.macs).sum();
        let programmings = run.stages().iter().map(|s| s.array_programmings).sum();
        (macs, programmings)
    }
}

/// Runs the trajectory measurement.
///
/// # Errors
///
/// Returns a message for unknown networks, unplannable layers, an
/// empty/descending batch list, or a sweep that does not start at
/// batch 1.
pub fn run(options: &SimBenchOptions) -> Result<SimBenchReport, String> {
    if options.batches.is_empty() {
        return Err("batch sweep must not be empty".to_string());
    }
    if options.batches[0] != 1 {
        return Err("batch sweep must start at 1 (the sequential baseline)".to_string());
    }
    if options.batches.windows(2).any(|w| w[1] <= w[0]) {
        return Err("batch sweep must be strictly ascending".to_string());
    }
    match options.mode {
        ExecMode::Exact => run_as::<i128>(options),
        ExecMode::Quantized => run_as::<i64>(options),
    }
}

fn run_as<T: Scalar + Send + Sync>(options: &SimBenchOptions) -> Result<SimBenchReport, String> {
    let max_batch = *options.batches.last().expect("non-empty sweep");
    let prepared = PreparedSim::<T>::new(options, max_batch)?;
    let runs = if options.quick { 1 } else { 3 };
    let mut points = Vec::with_capacity(options.batches.len());
    for &batch in &options.batches {
        // One untimed warm-up keeps allocator and cache state out of
        // the first measurement (skipped in quick mode).
        if !options.quick {
            prepared.execute(batch);
        }
        let mut best = f64::INFINITY;
        let mut macs = 0;
        let mut programmings = 0;
        for _ in 0..runs {
            let start = Instant::now();
            let (m, p) = prepared.execute(batch);
            let elapsed = start.elapsed().as_secs_f64();
            best = best.min(elapsed);
            macs = m;
            programmings = p;
        }
        let seconds = best.max(1e-9);
        points.push(BatchPoint {
            batch,
            runs,
            seconds,
            macs,
            programmings,
            macs_per_s: macs as f64 / seconds,
        });
    }
    Ok(SimBenchReport {
        network: options.network.clone(),
        array: options.array.to_string(),
        algorithm: options.algorithm.label().to_string(),
        mode: options.mode.to_string(),
        quick: options.quick,
        jobs: options.jobs,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> SimBenchOptions {
        SimBenchOptions {
            network: "tiny".to_string(),
            array: PimArray::new(64, 64).expect("positive"),
            batches: vec![1, 2],
            quick: true,
            ..SimBenchOptions::default()
        }
    }

    #[test]
    fn trajectory_measures_every_point() {
        let report = run(&tiny_options()).unwrap();
        assert_eq!(report.points.len(), 2);
        let p1 = report.point(1).unwrap();
        let p2 = report.point(2).unwrap();
        // MACs scale with the batch; programmings do not.
        assert_eq!(p2.macs, p1.macs * 2);
        assert_eq!(p2.programmings, p1.programmings);
        assert!(p1.macs_per_s > 0.0);
        assert!(report.speedup_vs_sequential(2).is_some());
    }

    #[test]
    fn emitted_json_has_the_stable_keys() {
        let report = run(&tiny_options()).unwrap();
        let json = report.to_json();
        for key in [
            "\"bench\": \"sim-macs-per-second\"",
            "\"network\": \"tiny\"",
            "\"points\":",
            "\"macs_per_s\":",
            "\"programmings\":",
            "\"speedup_max_batch_vs_sequential\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(report.render_text().contains("programmings per run"));
    }

    #[test]
    fn invalid_sweeps_are_rejected() {
        let mut o = tiny_options();
        o.batches = vec![];
        assert!(run(&o).is_err());
        o.batches = vec![2, 4];
        assert!(run(&o).is_err());
        o.batches = vec![1, 4, 2];
        assert!(run(&o).is_err());
        o.batches = vec![1, 2];
        o.network = "no-such-net".to_string();
        assert!(run(&o).is_err());
    }
}
