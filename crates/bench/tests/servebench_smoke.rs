//! End-to-end serve bench in its own process: `servebench::run` flips
//! the process-global `pim_telemetry::set_enabled` switch during the
//! overhead probe, which would race any other test recording
//! concurrently — hence a dedicated integration binary.

use vw_sdk_bench::servebench::{run, ServeBenchOptions};

#[test]
fn loopback_smoke_measures_and_passes_the_request_gate() {
    let options = ServeBenchOptions {
        requests: 24,
        concurrency: 3,
        quick: true,
        ..ServeBenchOptions::default()
    };
    let report = run(&options).expect("bench runs");
    assert_eq!(
        report.ok, 24,
        "errors={} sheds={}",
        report.errors, report.sheds
    );
    assert_eq!(report.errors, 0);
    assert!(report.rps > 0.0);
    // Every request landed in the latency histogram delta, so the
    // quantiles are real measurements, not defaults.
    assert!(report.p50_ms > 0.0 && report.p99_ms >= report.p50_ms);
    assert!(report.overhead.enabled_seconds > 0.0);
    assert!(report.to_json().contains("\"ok\": 24"));
    // The request-side gate must hold on loopback; the overhead gate is
    // asserted by CI's release-mode `--check` run, not here — a debug
    // build under a parallel test harness is too noisy to pin to 2%.
    assert_eq!(
        report
            .check_failures()
            .iter()
            .filter(|f| !f.contains("overhead"))
            .count(),
        0,
        "{:?}",
        report.check_failures()
    );
    // Telemetry is back on for whoever runs next in this process.
    assert!(pim_telemetry::enabled());
}
