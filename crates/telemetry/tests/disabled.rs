//! The enable/disable switch, exercised in its own process: toggling
//! the process-global flag would race with unit tests that record
//! concurrently, so this lives in a dedicated integration binary.

use pim_telemetry::{global, set_enabled, Buckets};

#[test]
fn disabling_freezes_all_recording() {
    let counter = global().counter("disabled_test_total", "test", &[]);
    let gauge = global().gauge("disabled_test_gauge", "test", &[]);
    let hist = global().histogram("disabled_test_seconds", "test", &[], Buckets::latency());

    counter.inc();
    gauge.set(7.0);
    hist.observe(0.01);
    assert_eq!(counter.get(), 1);
    assert_eq!(gauge.get(), 7.0);
    assert_eq!(hist.count(), 1);

    set_enabled(false);
    assert!(!pim_telemetry::enabled());
    counter.add(10);
    gauge.set(99.0);
    hist.observe(0.5);
    {
        let _span = pim_telemetry::span!("disabled_test.span");
    }
    assert_eq!(counter.get(), 1, "counter frozen while disabled");
    assert_eq!(gauge.get(), 7.0, "gauge frozen while disabled");
    assert_eq!(hist.count(), 1, "histogram frozen while disabled");

    // Rendering still works on frozen values.
    let text = global().render_prometheus();
    assert!(text.contains("disabled_test_total 1"), "{text}");

    set_enabled(true);
    assert!(pim_telemetry::enabled());
    counter.inc();
    assert_eq!(counter.get(), 2, "recording resumes after re-enable");
}
