//! **Process-wide observability** for the VW-SDK serving stack.
//!
//! The repo serves planning, deployment and bit-exact simulation through
//! three frontends, and every subsequent performance PR measures itself
//! against this crate: a std-only metrics registry (atomic counters,
//! gauges and fixed-bucket histograms), a lightweight structured span
//! API whose guard objects record wall time into histograms and can
//! emit JSON trace events to a sink, a hand-rolled Prometheus text
//! serializer for `GET /v1/metrics`, and a small format checker CI uses
//! to validate scrapes.
//!
//! Design constraints, in order:
//!
//! * **Observation only.** Nothing in this crate may change the bytes a
//!   handler answers. Recording is side-effect-free on the measured
//!   computation, and the whole registry can be stubbed out with
//!   [`set_enabled`]`(false)` — the property tests assert response
//!   bytes are identical either way.
//! * **Std-only, lock-light.** The workspace builds offline; counters
//!   and histogram buckets are plain relaxed atomics, and the registry
//!   map takes a write lock only the first time a `(name, labels)` pair
//!   is seen.
//! * **Deterministic rendering.** Metric families and label sets render
//!   in sorted order, so two scrapes of the same state are
//!   byte-identical — the same discipline the JSON wire schema follows.
//!
//! # Example
//!
//! ```
//! use pim_telemetry::{global, Buckets};
//!
//! let requests = global().counter(
//!     "example_requests_total",
//!     "Requests handled.",
//!     &[("endpoint", "/v1/plan")],
//! );
//! requests.inc();
//! let latency = global().histogram(
//!     "example_seconds",
//!     "Latency.",
//!     &[],
//!     Buckets::latency(),
//! );
//! latency.observe(0.003);
//! let text = global().render_prometheus();
//! assert!(text.contains("example_requests_total{endpoint=\"/v1/plan\"} 1"));
//! assert!(pim_telemetry::promcheck::validate(&text).is_ok());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod promcheck;
pub mod registry;
pub mod span;

pub use registry::{
    Buckets, Counter, CounterSample, Gauge, GaugeSample, Histogram, HistogramSample, MetricKind,
    Registry, Snapshot,
};
pub use span::{set_trace_sink, trace_enabled, trace_to_stderr, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Whether telemetry recording is live. `true` by default; the
/// observation-only property tests flip it to prove responses do not
/// depend on it.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables all recording (counters, histograms,
/// spans, trace events). Rendering still works while disabled — it just
/// sees frozen values. This is the "registry stubbed" switch the
/// observation-only guarantee is tested against.
pub fn set_enabled(enabled: bool) {
    // ORDERING: SeqCst makes the toggle a total-order point: the
    // observation-only property tests flip it between measurement
    // phases and must never see a phase straddle the switch. It is
    // called a handful of times per process, so strength is free.
    ENABLED.store(enabled, Ordering::SeqCst);
}

/// Whether recording is currently live.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry: every layer of the stack — the search
/// cache, the planning engine, the simulator, the HTTP server and the
/// CLI — records into this one instance, so `GET /v1/metrics` and
/// `vwsdk --metrics-dump` both see the whole process.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Opens a span recording into the global registry; see
/// [`span::SpanGuard`]. Prefer the [`span!`] macro, which also attaches
/// attributes.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::enter(name)
}

/// Opens a [`SpanGuard`] on the global registry, optionally attaching
/// `key = value` attributes (values go through `ToString`):
///
/// ```
/// let _guard = pim_telemetry::span!("engine.plan_network", jobs = 4);
/// ```
///
/// The guard records its wall time into the `pim_span_seconds` histogram
/// (labelled by span name) when dropped, and emits a JSON trace event if
/// a trace sink is installed.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr $(, $key:ident = $value:expr)+ $(,)?) => {{
        let mut guard = $crate::span($name);
        $(guard.attr(stringify!($key), $value.to_string());)+
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_one_instance() {
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
    }

    #[test]
    fn span_macro_compiles_with_and_without_attrs() {
        {
            let _g = span!("lib_test.plain");
        }
        {
            let _g = span!("lib_test.attrs", jobs = 4, batch = 2);
        }
        let snap = global().snapshot();
        let spans: Vec<&str> = snap
            .histograms
            .iter()
            .filter(|h| h.name == "pim_span_seconds")
            .flat_map(|h| h.labels.iter())
            .map(|(_, v)| v.as_str())
            .collect();
        assert!(spans.contains(&"lib_test.plain"), "{spans:?}");
        assert!(spans.contains(&"lib_test.attrs"), "{spans:?}");
    }
}
