//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms backed by relaxed atomics, with deterministic snapshots
//! and a hand-rolled Prometheus text renderer.
//!
//! A metric is identified by `(name, sorted label pairs)`. Registering
//! the same identity twice returns a handle to the same underlying
//! atomics, so call sites can re-register cheaply instead of caching
//! handles. Families (all series sharing a name) must agree on kind;
//! the first registration's help text and buckets win.
//!
//! ```
//! use pim_telemetry::{Buckets, Registry};
//!
//! let reg = Registry::new();
//! reg.counter("jobs_total", "Jobs run.", &[("kind", "plan")]).add(3);
//! let h = reg.histogram("job_seconds", "Job latency.", &[], Buckets::latency());
//! h.observe(0.02);
//! let text = reg.render_prometheus();
//! assert!(text.contains("jobs_total{kind=\"plan\"} 3"));
//! assert!(text.contains("job_seconds_count 1"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Instant, SystemTime};

/// What kind of time series a metric family is; decides the Prometheus
/// `# TYPE` line and which snapshot section the family lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Arbitrary `f64` that can move both ways.
    Gauge,
    /// Fixed-bucket distribution with a count and a sum.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Sorted, finite upper bounds for a histogram; an implicit `+Inf`
/// bucket is always appended.
#[derive(Debug, Clone)]
pub struct Buckets {
    bounds: Arc<Vec<f64>>,
}

impl Buckets {
    /// Builds a bucket layout from finite bounds. Panics if `bounds` is
    /// empty, unsorted, or contains duplicates or non-finite values —
    /// layouts are compile-time-ish constants, so a panic is a bug at
    /// the registration site, not a runtime condition.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "bucket bounds must be strictly increasing"
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite (+Inf is implicit)"
        );
        Buckets {
            bounds: Arc::new(bounds),
        }
    }

    /// Default layout for request/search latencies in seconds: 100 µs
    /// through 10 s, roughly 1-2.5-5 per decade.
    pub fn latency() -> Self {
        Buckets::new(vec![
            0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
            2.5, 5.0, 10.0,
        ])
    }

    /// Layout for payload/work sizes: powers of four from 1 to ~16 M.
    pub fn sizes() -> Self {
        Buckets::new(vec![
            1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
            4194304.0, 16777216.0,
        ])
    }

    /// The finite upper bounds, ascending.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

struct CounterInner {
    value: AtomicU64,
}

struct GaugeInner {
    bits: AtomicU64,
}

struct HistogramInner {
    bounds: Arc<Vec<f64>>,
    /// One slot per finite bound plus a trailing overflow (`+Inf`) slot;
    /// per-bucket (non-cumulative) counts.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// Handle to a registered counter. Cloning is cheap; all clones share
/// the same atomic.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    /// Adds one. No-op while telemetry is disabled.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. No-op while telemetry is disabled.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.inner.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }
}

/// Handle to a registered gauge. Cloning is cheap; all clones share the
/// same atomic.
#[derive(Clone)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

impl Gauge {
    /// Sets the gauge. No-op while telemetry is disabled.
    pub fn set(&self, value: f64) {
        if crate::enabled() {
            self.inner.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    fn set_unchecked(&self, value: f64) {
        self.inner.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.inner.bits.load(Ordering::Relaxed))
    }
}

/// Handle to a registered histogram. Cloning is cheap; all clones share
/// the same atomics.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Records one observation with Prometheus `le` semantics: the
    /// value lands in the first bucket whose upper bound is `>=` it, so
    /// an observation exactly on a bound belongs to that bound's
    /// bucket. No-op while telemetry is disabled.
    pub fn observe(&self, value: f64) {
        if !crate::enabled() {
            return;
        }
        let idx = self.inner.bounds.partition_point(|b| *b < value);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .inner
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear
    /// interpolation inside the bucket holding the target rank — the
    /// same estimate `histogram_quantile` would compute from the
    /// rendered buckets. Returns `0.0` for an empty histogram; ranks
    /// that fall into the overflow bucket clamp to the largest finite
    /// bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * count as f64;
        let mut cumulative = 0u64;
        let mut lower = 0.0f64;
        for (i, bound) in self.inner.bounds.iter().enumerate() {
            let in_bucket = self.inner.buckets[i].load(Ordering::Relaxed);
            let next = cumulative + in_bucket;
            if (next as f64) >= rank {
                if in_bucket == 0 {
                    return *bound;
                }
                let fraction = (rank - cumulative as f64) / in_bucket as f64;
                return lower + (bound - lower) * fraction;
            }
            cumulative = next;
            lower = *bound;
        }
        *self.inner.bounds.last().expect("buckets are non-empty")
    }
}

enum MetricInner {
    Counter(Arc<CounterInner>),
    Gauge(Arc<GaugeInner>),
    Histogram(Arc<HistogramInner>),
}

struct MetricEntry {
    help: String,
    kind: MetricKind,
    inner: MetricInner,
}

type MetricId = (String, Vec<(String, String)>);

/// A point-in-time copy of one counter series.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Metric family name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Help text of the family.
    pub help: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// A point-in-time copy of one gauge series.
#[derive(Debug, Clone)]
pub struct GaugeSample {
    /// Metric family name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Help text of the family.
    pub help: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// A point-in-time copy of one histogram series.
#[derive(Debug, Clone)]
pub struct HistogramSample {
    /// Metric family name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Help text of the family.
    pub help: String,
    /// Finite upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; one per bound plus a
    /// trailing overflow (`+Inf`) slot.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramSample {
    /// Quantile estimate from the sampled buckets — the same
    /// interpolation as [`Histogram::quantile`], usable after the live
    /// atomics are gone.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        let mut lower = 0.0f64;
        for (i, bound) in self.bounds.iter().enumerate() {
            let in_bucket = self.counts[i];
            let next = cumulative + in_bucket;
            if (next as f64) >= rank {
                if in_bucket == 0 {
                    return *bound;
                }
                let fraction = (rank - cumulative as f64) / in_bucket as f64;
                return lower + (bound - lower) * fraction;
            }
            cumulative = next;
            lower = *bound;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

/// A deterministic, fully ordered copy of the registry, used by the
/// shared JSON view (`api::metrics_json`) so the wire and the CLI dump
/// serialize identical structures.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All counter series, sorted by `(name, labels)`.
    pub counters: Vec<CounterSample>,
    /// All gauge series, sorted by `(name, labels)`.
    pub gauges: Vec<GaugeSample>,
    /// All histogram series, sorted by `(name, labels)`.
    pub histograms: Vec<HistogramSample>,
}

/// The metrics registry. Most code uses the process-wide instance via
/// [`crate::global`]; fresh instances exist for tests.
pub struct Registry {
    metrics: RwLock<BTreeMap<MetricId, MetricEntry>>,
    started: Instant,
    started_unix: f64,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry and stamps its start time, exposed as
    /// the `pim_process_start_seconds` gauge and [`Registry::uptime_seconds`]
    /// (which `/healthz` reports).
    pub fn new() -> Self {
        let started_unix = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        let reg = Registry {
            metrics: RwLock::new(BTreeMap::new()),
            started: Instant::now(),
            started_unix,
        };
        reg.gauge(
            "pim_process_start_seconds",
            "Unix timestamp at which this registry (and process) started.",
            &[],
        )
        .set_unchecked(started_unix);
        reg.gauge(
            "pim_build_info",
            "Constant 1, labelled with the build version.",
            &[("version", env!("CARGO_PKG_VERSION"))],
        )
        .set_unchecked(1.0);
        reg
    }

    /// Seconds since the registry was created (process start for the
    /// global instance).
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Unix timestamp at which the registry was created.
    pub fn start_unix_seconds(&self) -> f64 {
        self.started_unix
    }

    fn id(name: &str, labels: &[(&str, &str)]) -> MetricId {
        let mut owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        owned.sort();
        (name.to_string(), owned)
    }

    /// Registers (or finds) a counter series and returns its handle.
    /// Panics if `name` is already registered with a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let id = Registry::id(name, labels);
        if let Some(entry) = self.metrics.read().expect("registry lock").get(&id) {
            return Counter {
                inner: entry.counter_inner(name),
            };
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        let entry = metrics.entry(id).or_insert_with(|| MetricEntry {
            help: help.to_string(),
            kind: MetricKind::Counter,
            inner: MetricInner::Counter(Arc::new(CounterInner {
                value: AtomicU64::new(0),
            })),
        });
        Counter {
            inner: entry.counter_inner(name),
        }
    }

    /// Registers (or finds) a gauge series and returns its handle.
    /// Panics if `name` is already registered with a different kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = Registry::id(name, labels);
        if let Some(entry) = self.metrics.read().expect("registry lock").get(&id) {
            return Gauge {
                inner: entry.gauge_inner(name),
            };
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        let entry = metrics.entry(id).or_insert_with(|| MetricEntry {
            help: help.to_string(),
            kind: MetricKind::Gauge,
            inner: MetricInner::Gauge(Arc::new(GaugeInner {
                bits: AtomicU64::new(0f64.to_bits()),
            })),
        });
        Gauge {
            inner: entry.gauge_inner(name),
        }
    }

    /// Registers (or finds) a histogram series and returns its handle.
    /// The first registration's bucket layout wins. Panics if `name` is
    /// already registered with a different kind.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: Buckets,
    ) -> Histogram {
        let id = Registry::id(name, labels);
        if let Some(entry) = self.metrics.read().expect("registry lock").get(&id) {
            return Histogram {
                inner: entry.histogram_inner(name),
            };
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        let entry = metrics.entry(id).or_insert_with(|| {
            let slots = buckets.bounds.len() + 1;
            MetricEntry {
                help: help.to_string(),
                kind: MetricKind::Histogram,
                inner: MetricInner::Histogram(Arc::new(HistogramInner {
                    bounds: Arc::clone(&buckets.bounds),
                    buckets: (0..slots).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                })),
            }
        });
        Histogram {
            inner: entry.histogram_inner(name),
        }
    }

    /// Takes a deterministic snapshot of every series, sorted by
    /// `(name, labels)` within each kind.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.read().expect("registry lock");
        let mut snap = Snapshot::default();
        for ((name, labels), entry) in metrics.iter() {
            match &entry.inner {
                MetricInner::Counter(inner) => snap.counters.push(CounterSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    help: entry.help.clone(),
                    value: inner.value.load(Ordering::Relaxed),
                }),
                MetricInner::Gauge(inner) => snap.gauges.push(GaugeSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    help: entry.help.clone(),
                    value: f64::from_bits(inner.bits.load(Ordering::Relaxed)),
                }),
                MetricInner::Histogram(inner) => snap.histograms.push(HistogramSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    help: entry.help.clone(),
                    bounds: inner.bounds.as_ref().clone(),
                    counts: inner
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                    count: inner.count.load(Ordering::Relaxed),
                    sum: f64::from_bits(inner.sum_bits.load(Ordering::Relaxed)),
                }),
            }
        }
        snap
    }

    /// Renders the registry in Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` once per family, series in
    /// sorted order, histograms expanded into cumulative `_bucket`
    /// lines plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.read().expect("registry lock");
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for ((name, labels), entry) in metrics.iter() {
            if last_family != Some(name.as_str()) {
                out.push_str("# HELP ");
                out.push_str(name);
                out.push(' ');
                out.push_str(&escape_help(&entry.help));
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(name);
                out.push(' ');
                out.push_str(entry.kind.as_str());
                out.push('\n');
                last_family = Some(name.as_str());
            }
            match &entry.inner {
                MetricInner::Counter(inner) => {
                    render_sample(
                        &mut out,
                        name,
                        labels,
                        None,
                        &format_u64(inner.value.load(Ordering::Relaxed)),
                    );
                }
                MetricInner::Gauge(inner) => {
                    render_sample(
                        &mut out,
                        name,
                        labels,
                        None,
                        &format_f64(f64::from_bits(inner.bits.load(Ordering::Relaxed))),
                    );
                }
                MetricInner::Histogram(inner) => {
                    let bucket_name = format!("{name}_bucket");
                    let mut cumulative = 0u64;
                    for (i, bound) in inner.bounds.iter().enumerate() {
                        cumulative += inner.buckets[i].load(Ordering::Relaxed);
                        render_sample(
                            &mut out,
                            &bucket_name,
                            labels,
                            Some(&format_f64(*bound)),
                            &format_u64(cumulative),
                        );
                    }
                    cumulative += inner.buckets[inner.bounds.len()].load(Ordering::Relaxed);
                    render_sample(
                        &mut out,
                        &bucket_name,
                        labels,
                        Some("+Inf"),
                        &format_u64(cumulative),
                    );
                    render_sample(
                        &mut out,
                        &format!("{name}_sum"),
                        labels,
                        None,
                        &format_f64(f64::from_bits(inner.sum_bits.load(Ordering::Relaxed))),
                    );
                    render_sample(
                        &mut out,
                        &format!("{name}_count"),
                        labels,
                        None,
                        &format_u64(inner.count.load(Ordering::Relaxed)),
                    );
                }
            }
        }
        out
    }
}

impl MetricEntry {
    fn counter_inner(&self, name: &str) -> Arc<CounterInner> {
        match &self.inner {
            MetricInner::Counter(inner) => Arc::clone(inner),
            _ => panic!(
                "metric {name:?} already registered as a {}",
                self.kind.as_str()
            ),
        }
    }

    fn gauge_inner(&self, name: &str) -> Arc<GaugeInner> {
        match &self.inner {
            MetricInner::Gauge(inner) => Arc::clone(inner),
            _ => panic!(
                "metric {name:?} already registered as a {}",
                self.kind.as_str()
            ),
        }
    }

    fn histogram_inner(&self, name: &str) -> Arc<HistogramInner> {
        match &self.inner {
            MetricInner::Histogram(inner) => Arc::clone(inner),
            _ => panic!(
                "metric {name:?} already registered as a {}",
                self.kind.as_str()
            ),
        }
    }
}

fn render_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        if let Some(bound) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(bound);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn format_u64(value: u64) -> String {
    value.to_string()
}

/// Prometheus-compatible float rendering: integral values stay
/// integral-looking via Rust's shortest-roundtrip `{}` formatting.
fn format_f64(value: f64) -> String {
    if value.is_infinite() {
        return if value > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        };
    }
    format!("{value}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_and_labels_sorted() {
        let reg = Registry::new();
        let c = reg.counter("t_total", "help", &[("b", "2"), ("a", "1")]);
        c.add(5);
        let snap = reg.snapshot();
        let sample = snap.counters.iter().find(|s| s.name == "t_total").unwrap();
        assert_eq!(sample.value, 5);
        assert_eq!(
            sample.labels,
            vec![
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "2".to_string())
            ]
        );
    }

    #[test]
    fn reregistration_shares_atomics() {
        let reg = Registry::new();
        reg.counter("shared_total", "h", &[]).inc();
        reg.counter("shared_total", "other help ignored", &[]).inc();
        assert_eq!(reg.counter("shared_total", "h", &[]).get(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("mismatch", "h", &[]);
        reg.gauge("mismatch", "h", &[]);
    }

    /// Pins `le` semantics at boundary values: an observation exactly
    /// equal to a bound belongs to that bound's bucket, one ulp above
    /// it spills into the next, and values beyond the last bound land
    /// in the overflow slot.
    #[test]
    fn histogram_bucket_boundaries() {
        let reg = Registry::new();
        let h = reg.histogram("b_seconds", "h", &[], Buckets::new(vec![0.001, 0.01, 0.1]));
        h.observe(0.001); // exactly on first bound -> bucket 0
        h.observe(0.0010000000000000002); // one ulp above -> bucket 1
        h.observe(0.01); // exactly on second bound -> bucket 1
        h.observe(0.1); // exactly on last bound -> bucket 2
        h.observe(0.5); // beyond last bound -> overflow
        h.observe(0.0); // below first bound -> bucket 0
        let snap = reg.snapshot();
        let sample = snap
            .histograms
            .iter()
            .find(|s| s.name == "b_seconds")
            .unwrap();
        assert_eq!(sample.counts, vec![2, 2, 1, 1]);
        assert_eq!(sample.count, 6);
        assert!((sample.sum - 0.612).abs() < 1e-12, "sum={}", sample.sum);
    }

    #[test]
    fn histogram_cumulative_render() {
        let reg = Registry::new();
        let h = reg.histogram("c_seconds", "h", &[], Buckets::new(vec![1.0, 2.0]));
        h.observe(0.5);
        h.observe(1.5);
        h.observe(99.0);
        let text = reg.render_prometheus();
        assert!(text.contains("c_seconds_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("c_seconds_bucket{le=\"2\"} 2"), "{text}");
        assert!(text.contains("c_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("c_seconds_count 3"), "{text}");
        assert!(text.contains("c_seconds_sum 101"), "{text}");
    }

    #[test]
    fn quantile_interpolates() {
        let reg = Registry::new();
        let h = reg.histogram("q_seconds", "h", &[], Buckets::new(vec![1.0, 2.0, 4.0]));
        for _ in 0..100 {
            h.observe(1.5); // all in (1, 2]
        }
        let p50 = h.quantile(0.5);
        assert!((p50 - 1.5).abs() < 1e-9, "p50={p50}");
        assert_eq!(
            reg.histogram("q_empty", "h", &[], Buckets::latency())
                .quantile(0.99),
            0.0
        );
    }

    #[test]
    fn quantile_overflow_clamps_to_last_bound() {
        let reg = Registry::new();
        let h = reg.histogram("o_seconds", "h", &[], Buckets::new(vec![1.0, 2.0]));
        h.observe(50.0);
        assert_eq!(h.quantile(0.99), 2.0);
    }

    #[test]
    fn start_time_and_build_info_present() {
        let reg = Registry::new();
        let snap = reg.snapshot();
        let start = snap
            .gauges
            .iter()
            .find(|g| g.name == "pim_process_start_seconds")
            .expect("start gauge");
        assert!(start.value > 0.0);
        let build = snap
            .gauges
            .iter()
            .find(|g| g.name == "pim_build_info")
            .expect("build gauge");
        assert_eq!(build.value, 1.0);
        assert_eq!(build.labels[0].0, "version");
        assert!(reg.uptime_seconds() >= 0.0);
        assert!(reg.start_unix_seconds() > 0.0);
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let reg = Registry::new();
        reg.counter("z_total", "z", &[]).inc();
        reg.counter("a_total", "a", &[("x", "1")]).inc();
        reg.counter("a_total", "a", &[("x", "0")]).inc();
        let one = reg.render_prometheus();
        let two = reg.render_prometheus();
        assert_eq!(one, two);
        let a0 = one.find("a_total{x=\"0\"}").unwrap();
        let a1 = one.find("a_total{x=\"1\"}").unwrap();
        let z = one.find("z_total ").unwrap();
        assert!(a0 < a1 && a1 < z, "{one}");
        let helps = one.matches("# HELP a_total").count();
        assert_eq!(helps, 1, "HELP emitted once per family:\n{one}");
    }

    #[test]
    fn label_values_escaped() {
        let reg = Registry::new();
        reg.counter("esc_total", "h", &[("p", "a\"b\\c\nd")]).inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains("esc_total{p=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
    }
}
