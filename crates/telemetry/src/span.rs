//! Structured spans: RAII guards that time a region of work, record
//! the wall time into the global `pim_span_seconds` histogram
//! (labelled by span name), and — when a trace sink is installed —
//! emit one JSON trace event per span.
//!
//! The trace-event schema is one object per line:
//!
//! ```json
//! {"event":"span","name":"engine.plan_network","seconds":0.0123,"attrs":{"jobs":"4"}}
//! ```
//!
//! `seconds` is the span's wall time; `attrs` holds the string-valued
//! attributes attached via [`SpanGuard::attr`] (or the `span!` macro),
//! in attachment order. Install a sink with [`trace_to_stderr`] (what
//! `vwsdk --trace` does) or [`set_trace_sink`] with a capturing
//! closure in tests.
//!
//! ```
//! use std::sync::{Arc, Mutex};
//!
//! let lines = Arc::new(Mutex::new(Vec::new()));
//! let captured = Arc::clone(&lines);
//! pim_telemetry::set_trace_sink(Some(Arc::new(move |line: &str| {
//!     captured.lock().unwrap().push(line.to_string());
//! })));
//! {
//!     let _guard = pim_telemetry::span!("doc.example", batch = 8);
//! }
//! pim_telemetry::set_trace_sink(None);
//! let lines = lines.lock().unwrap();
//! assert!(lines[0].starts_with("{\"event\":\"span\",\"name\":\"doc.example\""));
//! assert!(lines[0].contains("\"batch\":\"8\""));
//! ```

use std::sync::{Arc, RwLock};
use std::time::Instant;

use crate::registry::Buckets;

/// A trace sink receives one rendered JSON line per finished span.
pub type TraceSink = Arc<dyn Fn(&str) + Send + Sync>;

fn sink_slot() -> &'static RwLock<Option<TraceSink>> {
    static SINK: std::sync::OnceLock<RwLock<Option<TraceSink>>> = std::sync::OnceLock::new();
    SINK.get_or_init(|| RwLock::new(None))
}

/// Installs (`Some`) or removes (`None`) the process-wide trace sink.
/// With no sink installed, spans still record their histograms but emit
/// no trace events — tracing costs nothing when off.
pub fn set_trace_sink(sink: Option<TraceSink>) {
    *sink_slot().write().expect("trace sink lock") = sink;
}

/// Installs a sink that writes each trace event as one line on stderr;
/// this is what `vwsdk --trace` enables.
pub fn trace_to_stderr() {
    set_trace_sink(Some(Arc::new(|line: &str| eprintln!("{line}"))));
}

/// Whether a trace sink is currently installed.
pub fn trace_enabled() -> bool {
    sink_slot().read().expect("trace sink lock").is_some()
}

/// RAII span guard: created by [`crate::span()`] or the `span!` macro,
/// it measures wall time from creation to drop. On drop it records the
/// elapsed seconds into `pim_span_seconds{span="<name>"}` and emits a
/// JSON trace event if a sink is installed. Both effects honour the
/// global [`crate::set_enabled`] switch.
pub struct SpanGuard {
    name: &'static str,
    started: Instant,
    attrs: Vec<(&'static str, String)>,
}

impl SpanGuard {
    pub(crate) fn enter(name: &'static str) -> SpanGuard {
        SpanGuard {
            name,
            started: Instant::now(),
            attrs: Vec::new(),
        }
    }

    /// Attaches a string-valued attribute, carried on the trace event
    /// (attributes do not become histogram labels — span cardinality
    /// stays bounded by span names).
    pub fn attr(&mut self, key: &'static str, value: String) {
        self.attrs.push((key, value));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let seconds = self.started.elapsed().as_secs_f64();
        crate::global()
            .histogram(
                "pim_span_seconds",
                "Wall time of instrumented spans, labelled by span name.",
                &[("span", self.name)],
                Buckets::latency(),
            )
            .observe(seconds);
        if !crate::enabled() {
            return;
        }
        let sink = sink_slot().read().expect("trace sink lock").clone();
        if let Some(sink) = sink {
            let mut line = String::with_capacity(96);
            line.push_str("{\"event\":\"span\",\"name\":\"");
            push_escaped(&mut line, self.name);
            line.push_str("\",\"seconds\":");
            line.push_str(&format!("{seconds}"));
            if !self.attrs.is_empty() {
                line.push_str(",\"attrs\":{");
                for (i, (key, value)) in self.attrs.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    line.push('"');
                    push_escaped(&mut line, key);
                    line.push_str("\":\"");
                    push_escaped(&mut line, value);
                    line.push('"');
                }
                line.push('}');
            }
            line.push('}');
            sink(&line);
        }
    }
}

fn push_escaped(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn span_records_histogram() {
        {
            let _g = crate::span("span_test.hist");
        }
        let snap = crate::global().snapshot();
        let sample = snap
            .histograms
            .iter()
            .find(|h| {
                h.name == "pim_span_seconds"
                    && h.labels == vec![("span".to_string(), "span_test.hist".to_string())]
            })
            .expect("span histogram registered");
        assert!(sample.count >= 1);
    }

    #[test]
    fn trace_event_schema() {
        let lines = Arc::new(Mutex::new(Vec::new()));
        let captured = Arc::clone(&lines);
        set_trace_sink(Some(Arc::new(move |line: &str| {
            captured.lock().unwrap().push(line.to_string());
        })));
        assert!(trace_enabled());
        {
            let mut g = crate::span("span_test.trace");
            g.attr("jobs", "4".to_string());
            g.attr("quoted", "a\"b".to_string());
        }
        set_trace_sink(None);
        assert!(!trace_enabled());
        let lines = lines.lock().unwrap();
        let line = lines
            .iter()
            .find(|l| l.contains("span_test.trace"))
            .expect("trace event emitted");
        assert!(line.starts_with("{\"event\":\"span\",\"name\":\"span_test.trace\",\"seconds\":"));
        assert!(
            line.contains("\"attrs\":{\"jobs\":\"4\",\"quoted\":\"a\\\"b\"}"),
            "{line}"
        );
        assert!(line.ends_with('}'));
    }
}
