//! A small in-tree checker for the Prometheus text exposition format
//! (version 0.0.4), used by CI to validate `/v1/metrics` scrapes and
//! by tests to pin the renderer. It is a validator, not a parser — it
//! checks structure and invariants and reports the first violation
//! with its line number.
//!
//! Checked invariants:
//!
//! * every line is a comment, blank, or a sample `name{labels} value`;
//! * metric and label names match the Prometheus grammar, label values
//!   are quoted with valid escapes;
//! * `# TYPE` appears at most once per family, before its samples, and
//!   names a known type;
//! * sample values parse as numbers (`+Inf`, `-Inf` and `NaN` allowed);
//! * histogram families end their `_bucket` series with `le="+Inf"`,
//!   with cumulative bucket values non-decreasing, and carry matching
//!   `_sum` and `_count` lines.
//!
//! ```
//! let text = "# HELP x_total things\n# TYPE x_total counter\nx_total 3\n";
//! assert!(pim_telemetry::promcheck::validate(text).is_ok());
//! assert!(pim_telemetry::promcheck::validate("{bad} 1\n").is_err());
//! ```

use std::collections::BTreeMap;

/// Validates Prometheus text exposition format; `Err` carries the
/// first violation, prefixed with its 1-based line number.
pub fn validate(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("empty exposition".to_string());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".to_string());
    }
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_samples: BTreeMap<String, bool> = BTreeMap::new();
    // Per histogram series (family + non-le labels): last cumulative
    // bucket value, whether +Inf was seen, and whether sum/count exist.
    let mut histograms: BTreeMap<String, HistogramState> = BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            check_comment(comment, lineno, &mut types, &seen_samples)?;
            continue;
        }
        let sample = parse_sample(line, lineno)?;
        let family = family_of(&sample.name, &types);
        seen_samples.insert(family.clone(), true);
        if types.get(&family).map(String::as_str) == Some("histogram") {
            track_histogram(&sample, &family, lineno, &mut histograms)?;
        }
    }

    for (series, state) in &histograms {
        if state.bucket_lines > 0 {
            if !state.saw_inf {
                return Err(format!(
                    "histogram series {series:?} has no le=\"+Inf\" bucket"
                ));
            }
            if !state.saw_count {
                return Err(format!(
                    "histogram series {series:?} has buckets but no _count"
                ));
            }
            if !state.saw_sum {
                return Err(format!(
                    "histogram series {series:?} has buckets but no _sum"
                ));
            }
        }
    }
    Ok(())
}

#[derive(Default)]
struct HistogramState {
    bucket_lines: usize,
    last_cumulative: f64,
    saw_inf: bool,
    saw_sum: bool,
    saw_count: bool,
}

struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn check_comment(
    comment: &str,
    lineno: usize,
    types: &mut BTreeMap<String, String>,
    seen_samples: &BTreeMap<String, bool>,
) -> Result<(), String> {
    let comment = comment.trim_start();
    let (keyword, rest) = match comment.split_once(' ') {
        Some(parts) => parts,
        None => return Ok(()), // bare comment
    };
    match keyword {
        "TYPE" => {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {lineno}: TYPE needs a metric name and a type"))?;
            check_metric_name(name, lineno)?;
            const KINDS: [&str; 5] = ["counter", "gauge", "histogram", "summary", "untyped"];
            if !KINDS.contains(&kind.trim()) {
                return Err(format!("line {lineno}: unknown metric type {kind:?}"));
            }
            if types.contains_key(name) {
                return Err(format!("line {lineno}: duplicate TYPE for {name:?}"));
            }
            if seen_samples.contains_key(name) {
                return Err(format!(
                    "line {lineno}: TYPE for {name:?} after its samples"
                ));
            }
            types.insert(name.to_string(), kind.trim().to_string());
        }
        "HELP" => {
            let name = rest.split(' ').next().unwrap_or("");
            check_metric_name(name, lineno)?;
        }
        _ => {} // free-form comment
    }
    Ok(())
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let name_end = line
        .find(['{', ' '])
        .ok_or_else(|| format!("line {lineno}: sample has no value"))?;
    let name = &line[..name_end];
    check_metric_name(name, lineno)?;
    let mut labels = Vec::new();
    let rest = if line[name_end..].starts_with('{') {
        let body_and_rest = &line[name_end + 1..];
        let close = find_label_close(body_and_rest)
            .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
        parse_labels(&body_and_rest[..close], lineno, &mut labels)?;
        body_and_rest[close + 1..].trim_start()
    } else {
        line[name_end..].trim_start()
    };
    // Value, optionally followed by a timestamp.
    let value_str = rest.split(' ').next().unwrap_or("");
    let value = parse_value(value_str)
        .ok_or_else(|| format!("line {lineno}: invalid sample value {value_str:?}"))?;
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Finds the index of the closing `}` of a label set, skipping over
/// quoted label values (which may contain escaped quotes and braces).
fn find_label_close(body: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, ch) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match ch {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(
    body: &str,
    lineno: usize,
    labels: &mut Vec<(String, String)>,
) -> Result<(), String> {
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without '='"))?;
        let key = rest[..eq].trim();
        check_label_name(key, lineno)?;
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("line {lineno}: label value for {key:?} not quoted"));
        }
        let mut value = String::new();
        let mut escaped = false;
        let mut end = None;
        for (i, ch) in after[1..].char_indices() {
            if escaped {
                match ch {
                    '\\' | '"' | 'n' => value.push(ch),
                    other => {
                        return Err(format!(
                            "line {lineno}: invalid escape '\\{other}' in label value"
                        ))
                    }
                }
                escaped = false;
                continue;
            }
            match ch {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {lineno}: unterminated label value"))?;
        labels.push((key.to_string(), value));
        rest = &after[1 + end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!(
                "line {lineno}: expected ',' between labels, got {rest:?}"
            ));
        }
    }
    Ok(())
}

fn parse_value(text: &str) -> Option<f64> {
    match text {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse::<f64>().ok(),
    }
}

fn check_metric_name(name: &str, lineno: usize) -> Result<(), String> {
    let mut chars = name.chars();
    let valid = match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }
        _ => false,
    };
    if valid {
        Ok(())
    } else {
        Err(format!("line {lineno}: invalid metric name {name:?}"))
    }
}

fn check_label_name(name: &str, lineno: usize) -> Result<(), String> {
    let mut chars = name.chars();
    let valid = match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        _ => false,
    };
    if valid {
        Ok(())
    } else {
        Err(format!("line {lineno}: invalid label name {name:?}"))
    }
}

/// Maps a sample name to its family: `_bucket`/`_sum`/`_count`
/// suffixes collapse onto a declared histogram family.
fn family_of(name: &str, types: &BTreeMap<String, String>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if types.get(stem).map(String::as_str) == Some("histogram") {
                return stem.to_string();
            }
        }
    }
    name.to_string()
}

fn track_histogram(
    sample: &Sample,
    family: &str,
    lineno: usize,
    histograms: &mut BTreeMap<String, HistogramState>,
) -> Result<(), String> {
    let series_labels: Vec<String> = sample
        .labels
        .iter()
        .filter(|(k, _)| k != "le")
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    let series = format!("{family}{{{}}}", series_labels.join(","));
    let state = histograms.entry(series.clone()).or_default();
    if sample.name.ends_with("_bucket") {
        let le = sample
            .labels
            .iter()
            .find(|(k, _)| k == "le")
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("line {lineno}: histogram bucket without le label"))?;
        parse_value(le).ok_or_else(|| format!("line {lineno}: invalid le bound {le:?}"))?;
        if state.bucket_lines > 0 && sample.value < state.last_cumulative {
            return Err(format!(
                "line {lineno}: histogram {series:?} buckets not cumulative \
                 ({} after {})",
                sample.value, state.last_cumulative
            ));
        }
        state.bucket_lines += 1;
        state.last_cumulative = sample.value;
        if le == "+Inf" {
            state.saw_inf = true;
        }
    } else if sample.name.ends_with("_sum") {
        state.saw_sum = true;
    } else if sample.name.ends_with("_count") {
        state.saw_count = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Buckets, Registry};

    #[test]
    fn accepts_registry_render() {
        let reg = Registry::new();
        reg.counter("ok_total", "things", &[("endpoint", "/v1/plan")])
            .inc();
        reg.gauge("ok_gauge", "level", &[]).set(3.5);
        let h = reg.histogram(
            "ok_seconds",
            "latency",
            &[("endpoint", "/v1/plan")],
            Buckets::latency(),
        );
        h.observe(0.002);
        h.observe(42.0);
        let text = reg.render_prometheus();
        validate(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(validate("").is_err());
        assert!(validate("no_newline 1").is_err());
        assert!(validate("{noname} 1\n").is_err());
        assert!(validate("x_total notanumber\n").is_err());
        assert!(validate("x_total{unquoted=1} 2\n").is_err());
        assert!(validate("9leading_digit 1\n").is_err());
        assert!(validate("# TYPE x_total bogus\nx_total 1\n").is_err());
        assert!(validate("x_total 1\n# TYPE x_total counter\n").is_err());
        assert!(validate("# TYPE x_total counter\n# TYPE x_total counter\nx_total 1\n").is_err());
    }

    #[test]
    fn rejects_non_cumulative_histogram() {
        let text = "# TYPE h_seconds histogram\n\
                    h_seconds_bucket{le=\"1\"} 5\n\
                    h_seconds_bucket{le=\"2\"} 3\n\
                    h_seconds_bucket{le=\"+Inf\"} 5\n\
                    h_seconds_sum 4\n\
                    h_seconds_count 5\n";
        let err = validate(text).unwrap_err();
        assert!(err.contains("not cumulative"), "{err}");
    }

    #[test]
    fn rejects_histogram_missing_inf_or_count() {
        let no_inf = "# TYPE h_seconds histogram\n\
                      h_seconds_bucket{le=\"1\"} 5\n\
                      h_seconds_sum 4\n\
                      h_seconds_count 5\n";
        assert!(validate(no_inf).unwrap_err().contains("+Inf"));
        let no_count = "# TYPE h_seconds histogram\n\
                        h_seconds_bucket{le=\"+Inf\"} 5\n\
                        h_seconds_sum 4\n";
        assert!(validate(no_count).unwrap_err().contains("_count"));
    }

    #[test]
    fn accepts_escaped_label_values_and_timestamps() {
        let text = "# TYPE esc_total counter\n\
                    esc_total{p=\"a\\\"b\\\\c\\nd\"} 1\n\
                    plain_total 2 1700000000\n";
        validate(text).unwrap_or_else(|e| panic!("{e}"));
    }
}
