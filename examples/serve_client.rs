//! Drives the planning daemon over plain `std::net::TcpStream`s — the
//! whole client side of planning-as-a-service in one file.
//!
//! Boots an in-process [`PlanServer`] on an ephemeral port (exactly
//! what `vwsdk serve --addr 127.0.0.1:0` runs), then exercises the API
//! the way any HTTP client would: a health check, the zoo listing, a
//! zoo plan, a plan of the checked-in `examples/specs/edge_cnn.json`
//! spec, and a malformed request to show the structured error path.
//!
//! Run with: `cargo run --example serve_client`

use pim_report::json::JsonValue;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use vw_sdk_serve::PlanServer;

/// The sample network spec, compiled in so the example runs from any
/// working directory.
const EDGE_CNN_SPEC: &str = include_str!("specs/edge_cnn.json");

/// One HTTP/1.1 exchange over a fresh connection. `connection: close`
/// makes the server close after answering, so EOF delimits the
/// response; long-lived clients would keep the default keep-alive and
/// read by `content-length` instead.
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: example\r\nconnection: close\r\n\
         content-length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

/// Splits a raw response into (status, body).
fn split(response: &str) -> (u16, String) {
    let status = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("well-formed status line");
    let body = response.split_once("\r\n\r\n").expect("framed body").1;
    (status, body.to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = PlanServer::bind("127.0.0.1:0", 2)?;
    let addr = server.local_addr()?;
    let handle = server.spawn();
    println!("planning daemon listening on http://{addr}\n");

    // 1. Liveness.
    let (status, body) = split(&exchange(addr, "GET", "/healthz", "")?);
    println!("GET /healthz -> {status}\n  {body}\n");

    // 2. The zoo.
    let (status, body) = split(&exchange(addr, "GET", "/v1/networks", "")?);
    let networks = JsonValue::parse(&body)?;
    let count = networks
        .get("networks")
        .and_then(JsonValue::as_array)
        .map_or(0, <[JsonValue]>::len);
    println!("GET /v1/networks -> {status} ({count} networks)\n");

    // 3. Plan a zoo network: the paper's Table I query.
    let (status, body) = split(&exchange(
        addr,
        "POST",
        "/v1/plan",
        r#"{"network": "resnet18", "array": "512x512"}"#,
    )?);
    let plan = JsonValue::parse(&body)?;
    println!(
        "POST /v1/plan resnet18@512x512 -> {status}: VW-SDK total {} cycles",
        plan.get("totals")
            .and_then(|t| t.get("VW-SDK"))
            .and_then(JsonValue::as_u64)
            .expect("planned total")
    );

    // 4. Plan the checked-in user-defined spec.
    let request = format!("{{\"spec\": {EDGE_CNN_SPEC}, \"array\": \"256x256\"}}");
    let (status, body) = split(&exchange(addr, "POST", "/v1/plan", &request)?);
    let plan = JsonValue::parse(&body)?;
    println!(
        "POST /v1/plan edge_cnn.json@256x256 -> {status}: {} layers planned",
        plan.get("layers")
            .and_then(JsonValue::as_array)
            .map_or(0, <[JsonValue]>::len)
    );

    // 5. A malformed body: structured 4xx, not a dropped connection.
    let (status, body) = split(&exchange(addr, "POST", "/v1/plan", "{oops")?);
    println!("POST /v1/plan malformed -> {status}\n  {body}");

    handle.shutdown();
    Ok(())
}
