//! Sweeps ResNet-18 over the paper's five PIM array sizes (Fig. 8(b)):
//! how does the VW-SDK speedup scale with array size?
//!
//! Run with: `cargo run --example resnet18_arrays`

use vw_sdk::pim_arch::presets;
use vw_sdk::pim_mapping::MappingAlgorithm;
use vw_sdk::pim_nets::zoo;
use vw_sdk::pim_report::chart::GroupedBarChart;
use vw_sdk::Planner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = zoo::resnet18_table1();
    let mut chart = GroupedBarChart::new(
        "ResNet-18: total speedup vs im2col by array size",
        &["SDK", "VW-SDK"],
    );

    println!("array    | im2col cycles | SDK cycles | VW cycles | SDK x | VW x");
    println!("---------+---------------+------------+-----------+-------+------");
    for preset in presets::fig8b_sweep() {
        let planner = Planner::new(preset.array);
        let report = planner.plan_network(&network)?;
        let im2col = report
            .total_cycles(MappingAlgorithm::Im2col)
            .expect("im2col is configured");
        let sdk = report
            .total_cycles(MappingAlgorithm::Sdk)
            .expect("SDK is configured");
        let vw = report
            .total_cycles(MappingAlgorithm::VwSdk)
            .expect("VW-SDK is configured");
        let s_sdk = im2col as f64 / sdk as f64;
        let s_vw = im2col as f64 / vw as f64;
        println!(
            "{:<8} | {:>13} | {:>10} | {:>9} | {:>5.2} | {:>5.2}",
            preset.array.to_string(),
            im2col,
            sdk,
            vw,
            s_sdk,
            s_vw
        );
        chart.add_group(preset.array.to_string(), &[s_sdk, s_vw]);
    }
    println!("\n{}", chart.render(40));
    println!("Paper reference at 512x512: 4.67x (VW-SDK) and 2.77x (SDK) over im2col.");
    Ok(())
}
