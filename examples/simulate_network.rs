//! A mixed-algorithm chip deployment executed end to end.
//!
//! The budget optimizer picks each layer's algorithm and array split for
//! the minimum pipeline bottleneck; the network executor then *runs* the
//! deployed plans — one input feature map streamed through every stage,
//! convolution on the crossbars, ReLU/pooling in the digital periphery —
//! and proves the chip computes exactly what the reference forward pass
//! computes, in exactly the predicted cycles.
//!
//! Run with: `cargo run --release --example simulate_network`

use vw_sdk::pim_arch::PimArray;
use vw_sdk::pim_chip::report::DeploymentReport;
use vw_sdk::pim_chip::ChipConfig;
use vw_sdk::pim_nets::zoo;
use vw_sdk::pim_sim::{simulate_deployment, ExecMode};
use vw_sdk::PlanningEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = zoo::vgg13_sim();
    let chip = ChipConfig::new(24, PimArray::new(128, 128)?, 2_000)?;
    println!("{network}");
    println!(
        "chip  : {} arrays of {} ({} reload cycles)\n",
        chip.n_arrays(),
        chip.array(),
        chip.reprogram_cycles()
    );

    // Deploy with the mixed-algorithm optimizer (per-layer im2col/SDK/
    // VW-SDK choice + array split), then execute the deployed plans.
    let engine = PlanningEngine::new().with_jobs(0);
    let deployment = engine.deploy_network(&network, &chip)?;
    let report = DeploymentReport::with_defaults(network.name(), &deployment);
    let sim = simulate_deployment(&network, &deployment, 2024, ExecMode::Quantized)?;

    println!("stage      algorithm  predicted  executed  = report.compute_cycles?");
    println!("----------------------------------------------------------------");
    for (stage, planned) in sim.stages.iter().zip(report.stages()) {
        assert_eq!(stage.executed_cycles, planned.compute_cycles);
        println!(
            "{:<10} {:<10} {:>9}  {:>8}  yes",
            stage.layer,
            stage.algorithm.label(),
            stage.predicted_cycles,
            stage.executed_cycles,
        );
    }
    assert!(sim.is_fully_consistent(), "simulation must be bit-exact");
    println!(
        "\noutput: {} elements, {} mismatches -> bit-exact against the reference forward pass",
        sim.elements, sim.mismatches
    );
    println!(
        "totals: {} executed cycles (= {} predicted), {} MACs, {} pJ",
        sim.executed_cycles(),
        sim.predicted_cycles(),
        sim.total_macs(),
        sim.total_energy_pj().round(),
    );
    Ok(())
}
