//! Plans a user-defined CNN — including strided, padded and depthwise
//! layers that go beyond the paper's assumptions — and prints the
//! per-layer mapping decisions.
//!
//! Run with: `cargo run --example custom_network`

use vw_sdk::pim_arch::PimArray;
use vw_sdk::pim_mapping::MappingAlgorithm;
use vw_sdk::pim_nets::{ConvLayer, Network};
use vw_sdk::Planner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut net = Network::new("custom-edge-cnn");
    // A strided stem (generalized cost model).
    net.push(
        ConvLayer::builder("stem")
            .input(96, 96)
            .kernel(5, 5)
            .channels(3, 24)
            .stride(2)
            .padding(2)
            .build()?,
    );
    // A depthwise separable pair (grouped convolution).
    net.push(
        ConvLayer::builder("dw1")
            .input(48, 48)
            .kernel(3, 3)
            .channels(24, 24)
            .groups(24)
            .padding(1)
            .build()?,
    );
    net.push(ConvLayer::square("pw1", 48, 1, 24, 48)?);
    // A plain paper-form block.
    net.push(ConvLayer::square("conv3", 24, 3, 48, 96)?);
    net.push(ConvLayer::square("conv4", 11, 3, 96, 192)?);
    net.check_channel_chain()?;

    let planner = Planner::new(PimArray::new(256, 256)?);
    let report = planner.plan_network(&net)?;

    println!("{net}");
    println!("layer   algorithm  window   ICtxOCt      cycles");
    println!("------------------------------------------------");
    for cmp in report.layers() {
        for plan in cmp.plans() {
            println!(
                "{:<7} {:<10} {:>6}  {:>4}x{:<5} {:>9}",
                cmp.layer().name(),
                plan.algorithm().label(),
                plan.window().to_string(),
                plan.tiled_ic(),
                plan.tiled_oc(),
                plan.cycles()
            );
        }
    }
    let speedup = report
        .speedup(MappingAlgorithm::VwSdk, MappingAlgorithm::Im2col)
        .expect("both algorithms configured");
    println!("\nnetwork total: VW-SDK is {speedup:.2}x faster than im2col on this 256x256 array.");
    Ok(())
}
