//! Validates a Prometheus text exposition with the in-tree checker —
//! CI's guard that `GET /v1/metrics` keeps speaking the format scrape
//! pipelines expect.
//!
//! ```text
//! curl -s http://127.0.0.1:7878/v1/metrics > metrics.txt
//! cargo run --release --example promcheck metrics.txt
//! ```
//!
//! Exits nonzero (with the first violation on stderr) when the file is
//! not valid exposition-format 0.0.4 text.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: promcheck <metrics.txt>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("promcheck: cannot read {path:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match pim_telemetry::promcheck::validate(&text) {
        Ok(()) => {
            let samples = text
                .lines()
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .count();
            println!("promcheck: {path}: ok ({samples} samples)");
            ExitCode::SUCCESS
        }
        Err(violation) => {
            eprintln!("promcheck: {path}: {violation}");
            ExitCode::FAILURE
        }
    }
}
