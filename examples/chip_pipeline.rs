//! Deploys ResNet-18 on a many-array PIM chip through the planning
//! engine and compares single-algorithm deployments against the
//! mixed-algorithm budget optimizer — the chip-scale extension of the
//! paper (its ref. [1], PipeLayer, is this setting).
//!
//! Run with: `cargo run --example chip_pipeline`

use vw_sdk_repro::pim_arch::latency::LatencyModel;
use vw_sdk_repro::pim_arch::PimArray;
use vw_sdk_repro::pim_chip::allocate::deploy;
use vw_sdk_repro::pim_chip::report::DeploymentReport;
use vw_sdk_repro::pim_chip::ChipConfig;
use vw_sdk_repro::pim_mapping::MappingAlgorithm;
use vw_sdk_repro::pim_nets::zoo;
use vw_sdk_repro::vw_sdk::PlanningEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = zoo::resnet18_table1();
    // One memoizing engine plans every deployment below; repeated
    // (shape, array, algorithm) keys are planned exactly once.
    let engine = PlanningEngine::new().with_jobs(0);

    println!("ResNet-18 on chips of 512x512 crossbars (100 ns/cycle, 2000-cycle reload)\n");
    println!("arrays  algorithm  tiles  resident  latency(us)  bottleneck  images/s");
    println!("----------------------------------------------------------------------");
    for n_arrays in [8, 16, 32, 64] {
        let chip = ChipConfig::new(n_arrays, PimArray::new(512, 512)?, 2_000)?;
        // The one-algorithm-for-all baselines...
        for alg in [MappingAlgorithm::Im2col, MappingAlgorithm::VwSdk] {
            let report =
                DeploymentReport::with_defaults(network.name(), &deploy(&network, alg, &chip)?);
            print_row(n_arrays, alg.label(), &report);
        }
        // ...against the engine's mixed-algorithm budget optimizer.
        let mixed = engine.deploy_network(&network, &chip)?;
        let report = DeploymentReport::with_defaults(network.name(), &mixed);
        print_row(n_arrays, "mixed", &report);
    }

    println!(
        "\nVW-SDK demands slightly more tiles (channel-granular AR tiling) but once\n\
         resident its per-stage cycle count is ~8x smaller, so pipelined throughput\n\
         jumps from ~890 to ~7000 images/s on this chip. The mixed optimizer picks\n\
         each layer's mapping and array share jointly, so its bottleneck is never\n\
         worse than the best single-algorithm deployment — and on starved chips it\n\
         trades tile-hungry mappings away to dodge reload penalties."
    );
    println!("\nplanning cache: {}", engine.stats());
    Ok(())
}

fn print_row(n_arrays: usize, label: &str, report: &DeploymentReport) {
    // The same cycle-time model DeploymentReport::with_defaults uses
    // for the images/s column, so the two columns cannot disagree.
    let latency_model = LatencyModel::isaac_like();
    println!(
        "{:<7} {:<10} {:>5}  {:<8}  {:>11.1}  {:>10}  {:>8.0}",
        n_arrays,
        label,
        report.tiles_demanded(),
        if report.fully_resident() { "yes" } else { "no" },
        latency_model.total_us(report.latency_cycles()),
        report.bottleneck_cycles(),
        report.throughput_ips(),
    );
}
