//! Deploys ResNet-18 on a many-array PIM chip and compares pipelined
//! throughput under im2col vs VW-SDK mapping — the chip-scale extension
//! of the paper (its ref. [1], PipeLayer, is this setting).
//!
//! Run with: `cargo run --example chip_pipeline`

use vw_sdk_repro::pim_arch::latency::LatencyModel;
use vw_sdk_repro::pim_arch::PimArray;
use vw_sdk_repro::pim_chip::allocate::deploy;
use vw_sdk_repro::pim_chip::pipeline::PipelineReport;
use vw_sdk_repro::pim_chip::ChipConfig;
use vw_sdk_repro::pim_mapping::MappingAlgorithm;
use vw_sdk_repro::pim_nets::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = zoo::resnet18_table1();
    let latency_model = LatencyModel::isaac_like();

    println!("ResNet-18 on chips of 512x512 crossbars (100 ns/cycle, 2000-cycle reload)\n");
    println!("arrays  algorithm  tiles  resident  latency(us)  bottleneck  images/s");
    println!("----------------------------------------------------------------------");
    for n_arrays in [8, 16, 32, 64] {
        let chip = ChipConfig::new(n_arrays, PimArray::new(512, 512)?, 2_000);
        for alg in [MappingAlgorithm::Im2col, MappingAlgorithm::VwSdk] {
            let deployment = deploy(&network, alg, &chip)?;
            let pipe = PipelineReport::new(&deployment);
            println!(
                "{:<7} {:<10} {:>5}  {:<8}  {:>11.1}  {:>10}  {:>8.0}",
                n_arrays,
                alg.label(),
                deployment.tiles_demanded(),
                if deployment.is_fully_resident() {
                    "yes"
                } else {
                    "no"
                },
                latency_model.total_us(pipe.latency_cycles()),
                pipe.bottleneck_cycles(),
                pipe.throughput_ips(&latency_model),
            );
        }
    }

    println!(
        "\nVW-SDK demands slightly more tiles (channel-granular AR tiling) but once\n\
         resident its per-stage cycle count is ~8x smaller, so pipelined throughput\n\
         jumps from ~890 to ~7000 images/s on this chip."
    );
    Ok(())
}
