//! Reproduces the paper's Table I for VGG-13: per-layer windows, tiled
//! channels and total computing cycles for im2col / SDK / VW-SDK.
//!
//! Run with: `cargo run --example map_vgg13`

use vw_sdk::pim_arch::PimArray;
use vw_sdk::pim_mapping::MappingAlgorithm;
use vw_sdk::pim_nets::zoo;
use vw_sdk::render::{render_speedups, render_table1};
use vw_sdk::Planner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let planner = Planner::new(PimArray::new(512, 512)?);
    let report = planner.plan_network(&zoo::vgg13())?;

    println!("{}", render_table1(&report));
    println!("{}", render_speedups(&report, MappingAlgorithm::Im2col));
    println!(
        "Paper reference: total cycles 243736 (im2col, implied), 114697 (SDK), 77102 (VW-SDK);\n\
         speedups 3.16x and 1.49x."
    );
    Ok(())
}
