//! Executes every mapping algorithm on a real crossbar simulator and
//! checks the output against the reference convolution — the reproduction
//! equivalent of "it's not just a cost model, the mapping really computes
//! the convolution".
//!
//! Run with: `cargo run --example functional_check`

use vw_sdk::pim_arch::PimArray;
use vw_sdk::pim_mapping::MappingAlgorithm;
use vw_sdk::pim_nets::ConvLayer;
use vw_sdk::pim_sim::verify::verify_plan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layer = ConvLayer::square("demo", 12, 3, 4, 8)?;
    let array = PimArray::new(96, 64)?;
    println!("layer : {layer}");
    println!("array : {array}\n");

    println!("algorithm         window   cycles  output == reference?");
    println!("------------------------------------------------------");
    for alg in MappingAlgorithm::all() {
        let plan = alg.plan(&layer, array)?;
        let report = verify_plan(&plan, 2024)?;
        println!(
            "{:<17} {:>6}  {:>7}  {} ({} elements, {} mismatches)",
            alg.label(),
            plan.window().to_string(),
            report.executed_cycles,
            if report.matches { "yes" } else { "NO" },
            report.elements,
            report.mismatches
        );
        assert!(
            report.is_fully_consistent(),
            "{alg} failed functional verification"
        );
    }
    println!("\nAll mappings compute the exact convolution in exactly the predicted cycles.");
    Ok(())
}
