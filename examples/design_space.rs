//! Visualizes the Algorithm 1 search landscape for one layer: the cycle
//! cost of every feasible parallel-window shape, and where the optimum
//! sits (the paper's Fig. 5(b) intuition, but exhaustive).
//!
//! Run with: `cargo run --example design_space`

use vw_sdk::pim_arch::PimArray;
use vw_sdk::pim_cost::search::{optimal_window_with, SearchOptions};
use vw_sdk::pim_nets::ConvLayer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // VGG-13 layer 5: the paper's example of a rectangular optimum (4x3).
    let layer = ConvLayer::square("conv5", 56, 3, 128, 256)?;
    let array = PimArray::new(512, 512)?;

    let options = SearchOptions {
        collect_trace: true,
        ..SearchOptions::paper()
    };
    let result = optimal_window_with(&layer, array, options);

    println!("layer : {layer}");
    println!("array : {array}");
    println!("im2col initialization: {} cycles\n", result.im2col().cycles);

    // Show the ten best candidates.
    let mut trace = result.trace().to_vec();
    trace.sort_by_key(|c| c.cycles);
    println!(
        "top candidates (of {} feasible / {} scanned):",
        result.feasible(),
        result.evaluated()
    );
    println!("window   NWP  ICt  OCt   AR  AC    cycles");
    println!("------------------------------------------");
    for cost in trace.iter().take(10) {
        println!(
            "{:>6}  {:>4} {:>4} {:>4} {:>4} {:>3} {:>9}",
            cost.window.to_string(),
            cost.windows_in_pw,
            cost.tiled_ic,
            cost.tiled_oc,
            cost.ar_cycles,
            cost.ac_cycles,
            cost.cycles
        );
    }

    let best = result.best().expect("a window beats im2col here");
    println!(
        "\noptimum: {} with {} cycles ({:.2}x over im2col)",
        best.window,
        best.cycles,
        result.im2col().cycles as f64 / best.cycles as f64
    );
    println!("paper Table I reports: 4x3x42x256 for this layer.");
    Ok(())
}
