//! The paper's amortization argument, measured: program once, stream N.
//!
//! A deployed network's crossbars hold their weights across inputs, so
//! the cost of programming (and of building the tile layouts) is paid
//! once per deployment while every extra input only pays the stream
//! phase. This example sweeps the batch size on vgg13-sim and prints
//! the resulting MACs/s trajectory — programmings stay constant while
//! throughput climbs — then double-checks with the full simulation
//! entry point that a batched run is still bit-exact against the
//! reference forward pass for every batch element.
//!
//! Run with: `cargo run --release --example batch_throughput`

use vw_sdk::pim_arch::PimArray;
use vw_sdk::pim_nets::zoo;
use vw_sdk::PlanningEngine;
use vw_sdk_bench::simbench::{self, SimBenchOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = SimBenchOptions {
        batches: vec![1, 4, 16, 64],
        quick: true,
        ..SimBenchOptions::default()
    };
    let report = simbench::run(&options)?;
    print!("{}", report.render_text());

    // The trajectory's invariant: the program phase does not scale with
    // the batch.
    let baseline = report.point(1).expect("batch-1 point");
    for point in &report.points {
        assert_eq!(
            point.programmings, baseline.programmings,
            "programmings must not scale with the batch"
        );
        assert_eq!(point.macs, baseline.macs * point.batch as u64);
    }

    // Throughput is worthless if the answers drift: the simulation
    // entry point streams a batch through the same programmed state and
    // verifies every element against the reference forward pass.
    let engine = PlanningEngine::new();
    let sim =
        engine.simulate_network_batch(&zoo::vgg13_sim(), PimArray::new(512, 512)?, 2024, 4, 0)?;
    assert!(sim.is_fully_consistent(), "batched run must stay bit-exact");
    println!(
        "\nverified: batch {} on {} -> {} elements, {} mismatches, cycles as predicted",
        sim.batch, sim.network, sim.elements, sim.mismatches
    );
    Ok(())
}
