//! Quickstart: plan one convolutional layer on a PIM array and compare
//! the paper's three mapping algorithms.
//!
//! Run with: `cargo run --example quickstart`

use vw_sdk::pim_arch::PimArray;
use vw_sdk::pim_mapping::MappingAlgorithm;
use vw_sdk::pim_nets::ConvLayer;
use vw_sdk::Planner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ResNet-18 conv4 from the paper's Table I: 14x14 input, 3x3 kernel,
    // 256 -> 256 channels, on the paper's 512x512 crossbar.
    let layer = ConvLayer::square("conv4", 14, 3, 256, 256)?;
    let array = PimArray::new(512, 512)?;

    let planner = Planner::new(array);
    let comparison = planner.plan_layer(&layer)?;

    println!("layer : {layer}");
    println!("array : {array}\n");
    for plan in comparison.plans() {
        println!(
            "{:<8} window {:>5}  tiles ICt={:<3} OCt={:<3}  cycles {:>6}",
            plan.algorithm().label(),
            plan.window().to_string(),
            plan.tiled_ic(),
            plan.tiled_oc(),
            plan.cycles()
        );
    }

    let vw = comparison
        .plan_for(MappingAlgorithm::VwSdk)
        .expect("planner configures VW-SDK by default");
    let im2col = comparison
        .plan_for(MappingAlgorithm::Im2col)
        .expect("planner configures im2col by default");
    println!(
        "\nVW-SDK finds the {} parallel window: {:.2}x faster than im2col.",
        vw.window(),
        vw.speedup_over(im2col)
    );
    Ok(())
}
